"""Unit tests for the multi-process serving supervisor.

Everything here is fast and (mostly) subprocess-free: the worker pipe
framing, the WAL owner lock, the dispatch-timeout budget helper, the
graceful-drain plumbing of :class:`~repro.serve.app.ServeApp`, the
respawn flap cap (driven through the ``worker_spawn`` fault seam, which
fails the fork before any process exists), the mutation seq-hint dedup
decision, and the /readyz quorum arithmetic.  The end-to-end SIGKILL
matrix over real worker processes lives in
``tests/test_serve_procs_chaos.py``.
"""

from __future__ import annotations

import asyncio
import io
import json
import threading
import time

import pytest

from repro import obs
from repro.exceptions import ProtocolError, ServeError, WalError
from repro.obs import names
from repro.resilience.budget import Budget
from repro.robust import faults
from repro.serve.admission import AdmissionController
from repro.serve.app import ServeApp
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    encode_frame,
    read_frame,
    read_frame_async,
)
from repro.serve.supervisor import (
    Supervisor,
    SupervisorConfig,
    WorkerSlot,
    _worker_fault_outcome,
)
from repro.serve.retry import is_transient
from repro.serve.tenancy import TenantPolicy, default_classes
from repro.stream.wal import WriteAheadLog


# ----------------------------------------------------------------------
# Worker pipe framing
# ----------------------------------------------------------------------
class TestFrameCodec:
    def test_round_trip(self):
        payload = {"op": "request", "id": 7, "body": "x" * 500}
        stream = io.BytesIO(encode_frame(payload) + encode_frame({"op": "ping"}))
        assert read_frame(stream) == payload
        assert read_frame(stream) == {"op": "ping"}

    def test_clean_eof_is_none(self):
        assert read_frame(io.BytesIO(b"")) is None

    def test_mid_header_eof_raises(self):
        with pytest.raises(ProtocolError):
            read_frame(io.BytesIO(b"\x00\x00"))

    def test_mid_body_eof_raises(self):
        frame = encode_frame({"op": "ping"})
        with pytest.raises(ProtocolError):
            read_frame(io.BytesIO(frame[:-1]))

    def test_non_object_payload_raises(self):
        body = b"[1, 2]"
        framed = len(body).to_bytes(4, "big") + body
        with pytest.raises(ProtocolError):
            read_frame(io.BytesIO(framed))

    def test_oversized_frame_rejected_both_ways(self):
        huge = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError):
            read_frame(io.BytesIO(huge + b"x"))
        with pytest.raises(ProtocolError):
            encode_frame({"pad": "x" * MAX_FRAME_BYTES})

    def test_async_reader_matches_sync(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"op": "pong", "id": 3}))
            reader.feed_eof()
            first = await read_frame_async(reader)
            second = await read_frame_async(reader)
            return first, second

        first, second = asyncio.run(go())
        assert first == {"op": "pong", "id": 3}
        assert second is None

    def test_async_reader_mid_frame_raises(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"op": "pong"})[:-2])
            reader.feed_eof()
            await read_frame_async(reader)

        with pytest.raises(ProtocolError):
            asyncio.run(go())


# ----------------------------------------------------------------------
# WAL owner lock (the mutation worker's exclusivity)
# ----------------------------------------------------------------------
class TestWalOwnerLock:
    def test_second_exclusive_open_refused_while_held(self, tmp_path):
        first = WriteAheadLog.open(str(tmp_path / "wal"), exclusive=True)
        try:
            with pytest.raises(WalError):
                WriteAheadLog.open(str(tmp_path / "wal"), exclusive=True)
        finally:
            first.close()
        # Released on close: the next owner acquires it cleanly.
        second = WriteAheadLog.open(str(tmp_path / "wal"), exclusive=True)
        second.close()

    def test_non_exclusive_open_ignores_the_lock(self, tmp_path):
        owner = WriteAheadLog.open(str(tmp_path / "wal"), exclusive=True)
        try:
            reader = WriteAheadLog.open(str(tmp_path / "wal"))
            reader.close()
        finally:
            owner.close()


# ----------------------------------------------------------------------
# Budget.remaining_s (sizes per-attempt dispatch timeouts)
# ----------------------------------------------------------------------
class TestBudgetRemaining:
    def test_unbounded_budget_has_no_remaining(self):
        assert Budget().remaining_s() is None

    def test_counts_down_and_clamps_at_zero(self):
        budget = Budget(deadline_s=0.05).start()
        first = budget.remaining_s()
        assert first is not None and 0.0 < first <= 0.05
        time.sleep(0.06)
        assert budget.remaining_s() == 0.0

    def test_lazily_starts_on_first_read(self):
        budget = Budget(deadline_s=1.0)
        assert not budget.started
        remaining = budget.remaining_s()
        assert budget.started
        assert remaining is not None and remaining > 0.5

    def test_broken_clock_reads_as_zero(self):
        budget = Budget(deadline_s=10.0).start()
        with faults.inject("clock", "raise"):
            assert budget.remaining_s() == 0.0


# ----------------------------------------------------------------------
# ServeApp graceful drain (single-process close contract)
# ----------------------------------------------------------------------
class TestServeAppDrain:
    def _app(self) -> ServeApp:
        return ServeApp(
            policy=TenantPolicy(default_classes()),
            admission=AdmissionController(max_concurrency=2, max_queue=4),
        )

    def test_close_waits_for_in_flight_work(self):
        app = self._app()
        app.admission._in_flight = 1

        def finish_soon():
            time.sleep(0.05)
            app.admission._in_flight = 0

        settler = threading.Thread(target=finish_soon)
        started = time.monotonic()
        settler.start()
        app.close(drain_s=5.0)
        settler.join()
        elapsed = time.monotonic() - started
        assert 0.04 <= elapsed < 1.0  # waited for the work, not the deadline
        assert app.draining

    def test_close_gives_up_at_the_deadline(self):
        app = self._app()
        app.admission._in_flight = 1
        with obs.enabled_scope(True), obs.scope():
            started = time.monotonic()
            app.close(drain_s=0.1)
            elapsed = time.monotonic() - started
            counters = obs.collect()["counters"]
        app.admission._in_flight = 0
        assert elapsed >= 0.1
        assert counters.get(names.SERVE_WORKERS_DRAIN_TIMEOUTS) == 1

    def test_draining_app_503s_new_work_and_fails_readyz(self):
        app = self._app()

        async def go():
            request_cls = __import__(
                "repro.serve.protocol", fromlist=["HttpRequest"]
            ).HttpRequest
            app._draining = True
            query = request_cls(
                method="POST",
                path="/query",
                query={},
                headers={},
                body=json.dumps({"index": "default"}).encode(),
            )
            mutate = request_cls(
                method="POST", path="/mutate", query={}, headers={},
                body=query.body,
            )
            ready = request_cls(
                method="GET", path="/readyz", query={}, headers={}
            )
            return (
                await app.handle(query),
                await app.handle(mutate),
                await app.handle(ready),
            )

        q, m, r = asyncio.run(go())
        app._draining = False
        app.close(drain_s=0.0)
        assert q.status == 503 and json.loads(q.body)["error"] == "draining"
        assert m.status == 503 and json.loads(m.body)["error"] == "draining"
        assert r.status == 503 and json.loads(r.body)["draining"] is True


# ----------------------------------------------------------------------
# Circuit breaker: the half-open probe quota is a hard cap (threaded)
# ----------------------------------------------------------------------
class TestBreakerProbeCapUnderThreads:
    @pytest.mark.parametrize("half_open_probes", [1, 3])
    def test_concurrent_allow_admits_at_most_the_quota(
        self, half_open_probes
    ):
        breaker = CircuitBreaker(
            "x",
            failure_threshold=1,
            recovery_s=0.01,
            half_open_probes=half_open_probes,
        )
        breaker.record_failure()  # -> OPEN
        assert breaker.state is BreakerState.OPEN
        time.sleep(0.02)  # let the recovery window elapse

        n_threads = 16
        barrier = threading.Barrier(n_threads)
        admitted: "list[bool]" = [False] * n_threads

        def probe(i: int) -> None:
            barrier.wait()
            admitted[i] = breaker.allow()

        threads = [
            threading.Thread(target=probe, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert breaker.state is BreakerState.HALF_OPEN
        assert sum(admitted) == half_open_probes

    def test_settled_probe_reopens_or_closes_consistently(self):
        breaker = CircuitBreaker(
            "x", failure_threshold=1, recovery_s=0.01, half_open_probes=1
        )
        breaker.record_failure()
        time.sleep(0.02)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED


# ----------------------------------------------------------------------
# Supervisor internals (no real worker processes)
# ----------------------------------------------------------------------
def make_supervisor(**overrides) -> Supervisor:
    config = SupervisorConfig(
        query_workers=overrides.pop("query_workers", 2),
        snapshots=overrides.pop("snapshots", {"default": "/nonexistent.snap"}),
        streams=overrides.pop("streams", {}),
        **overrides,
    )
    return Supervisor(config)


class TestSupervisorValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(ServeError):
            make_supervisor(query_workers=0)

    def test_no_shards_rejected(self):
        with pytest.raises(ServeError):
            Supervisor(SupervisorConfig(query_workers=1))


class TestWorkerFaultOutcome:
    def test_is_transient_so_retry_fails_over(self):
        outcome = _worker_fault_outcome("worker 123 closed its pipe")
        assert is_transient(outcome)
        assert outcome.report.absorbed_faults == 1
        assert outcome.report.exhausted == "fault"


class TestRespawnFlapCap:
    def test_persistently_failing_spawn_hits_the_flap_cap(self):
        sup = make_supervisor(
            query_workers=1,
            backoff_base_s=0.001,
            backoff_cap_s=0.002,
            flap_window_s=30.0,
            flap_max=3,
        )
        slot = WorkerSlot(slot=0, role="query")
        sup._slots.append(slot)

        async def go():
            with faults.inject("worker_spawn", "raise") as handle:
                await sup._boot(slot)
                deadline = asyncio.get_running_loop().time() + 5.0
                while slot.state != "failed":
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.005)
                return handle.hits

        with obs.enabled_scope(True), obs.scope():
            hits = asyncio.run(go())
            counters = obs.collect()["counters"]
        assert slot.state == "failed"
        assert hits >= 3  # first boot + the capped respawn attempts
        assert counters.get(names.SERVE_WORKERS_FLAP_CAPPED) == 1
        assert counters.get(names.SERVE_WORKERS_SPAWN_FAILURES, 0) >= 3
        assert names.fault("worker_spawn", "raise") in counters


class TestMutationSeqDedup:
    def _sup_with_mutation_slot(self, last_acked: int, recovered: int):
        sup = make_supervisor(
            query_workers=1,
            snapshots={"default": "/nonexistent.snap"},
            streams={"live": "/nonexistent-stream"},
        )
        slot = WorkerSlot(slot=0, role="mutation", state="ready")
        slot.last_seq = {"live": recovered}
        sup._mutation_slot = slot
        sup._slots.append(slot)
        sup._last_acked["live"] = last_acked
        return sup, slot

    def test_durable_inflight_mutation_is_reacked_not_resent(self):
        # Handshake seq ABOVE the last ack: the crashed worker's append
        # hit the fsynced WAL, so the supervisor must re-ack, not
        # resend (a resend would apply the mutation twice).
        sup, slot = self._sup_with_mutation_slot(last_acked=4, recovered=5)
        payload = {"index": "live", "op": "insert", "key": "k9"}
        frame = {"op": "request", "body": json.dumps(payload)}

        async def no_dispatch(*args, **kwargs):  # pragma: no cover
            raise AssertionError("re-ack path must not resend")

        sup._dispatch = no_dispatch  # type: ignore[method-assign]
        with obs.enabled_scope(True), obs.scope():
            response = asyncio.run(
                sup._recover_mutation(slot, "live", payload, frame, 1.0)
            )
            counters = obs.collect()["counters"]
        body = json.loads(response.body)
        assert response.status == 200
        assert body["acked"] is True
        assert body["seq"] == 5
        assert body["recovered"] is True
        assert body["key"] == "k9"
        assert sup._last_acked["live"] == 5
        assert counters.get(names.SERVE_WORKERS_MUTATIONS_REACKED) == 1
        assert names.SERVE_WORKERS_MUTATIONS_RESENT not in counters

    def test_lost_inflight_mutation_is_resent_once(self):
        # Handshake seq AT the last ack: the append provably never
        # reached the log — resend exactly once.
        sup, slot = self._sup_with_mutation_slot(last_acked=4, recovered=4)
        payload = {"index": "live", "op": "insert", "key": "k9"}
        frame = {"op": "request", "body": json.dumps(payload)}
        dispatched: "list[dict]" = []

        async def fake_dispatch(slot_, frame_, timeout):
            dispatched.append(frame_)
            return {
                "op": "response",
                "status": 200,
                "body": json.dumps({"acked": True, "seq": 5, "key": "k9"}),
            }

        sup._dispatch = fake_dispatch  # type: ignore[method-assign]
        with obs.enabled_scope(True), obs.scope():
            response = asyncio.run(
                sup._recover_mutation(slot, "live", payload, frame, 1.0)
            )
            counters = obs.collect()["counters"]
        assert response.status == 200
        assert json.loads(response.body)["seq"] == 5
        assert len(dispatched) == 1
        assert sup._last_acked["live"] == 5
        assert counters.get(names.SERVE_WORKERS_MUTATIONS_RESENT) == 1
        assert names.SERVE_WORKERS_MUTATIONS_REACKED not in counters

    def test_unrecovered_worker_is_an_honest_unacked_503(self):
        sup, slot = self._sup_with_mutation_slot(last_acked=4, recovered=4)
        slot.state = "failed"
        payload = {"index": "live", "op": "insert", "key": "k9"}
        response = asyncio.run(
            sup._recover_mutation(
                slot, "live", payload, {"op": "request"}, 0.05
            )
        )
        body = json.loads(response.body)
        assert response.status == 503
        assert body["acked"] is False


class TestReadyzQuorum:
    def _sup_with_states(self, states, mutation_state=None) -> Supervisor:
        sup = make_supervisor(
            query_workers=max(len(states), 1),
            streams=(
                {"live": "/nonexistent-stream"} if mutation_state else {}
            ),
        )
        for i, state in enumerate(states):
            sup._slots.append(WorkerSlot(slot=i, role="query", state=state))
        if mutation_state is not None:
            slot = WorkerSlot(
                slot=len(states), role="mutation", state=mutation_state
            )
            sup._mutation_slot = slot
            sup._slots.append(slot)
        return sup

    def test_majority_live_is_ready(self):
        sup = self._sup_with_states(["ready", "ready", "dead"])
        response = sup._readyz()
        body = json.loads(response.body)
        assert response.status == 200
        assert body["ready"] is True
        assert body["workers"]["query"] == {
            "total": 3, "live": 2, "quorum": 2,
        }

    def test_minority_live_is_not_ready(self):
        sup = self._sup_with_states(["ready", "dead", "dead"])
        response = sup._readyz()
        body = json.loads(response.body)
        assert response.status == 503
        assert body["ready"] is False

    def test_dead_mutation_worker_blocks_readiness(self):
        sup = self._sup_with_states(["ready", "ready"], mutation_state="dead")
        body = json.loads(sup._readyz().body)
        assert body["ready"] is False
        assert body["workers"]["mutation"] == {"live": False}

    def test_draining_is_never_ready(self):
        sup = self._sup_with_states(["ready", "ready"])
        sup.request_drain()
        body = json.loads(sup._readyz().body)
        assert body["ready"] is False
        assert body["draining"] is True

    def test_slots_snapshot_lists_every_worker(self):
        sup = self._sup_with_states(["ready", "failed"])
        snapshot = sup.slots_snapshot()
        assert [s["state"] for s in snapshot] == ["ready", "failed"]
