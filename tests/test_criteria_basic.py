"""Interface-level tests for the criterion registry and each criterion."""

from __future__ import annotations

import pytest

from repro import dominates
from repro.core import available_criteria, get_criterion, register_criterion
from repro.core.base import DominanceCriterion
from repro.exceptions import CriterionError, DimensionalityMismatchError
from repro.geometry.hypersphere import Hypersphere

ALL_CRITERIA = ("hyperbola", "minmax", "mbr", "gp", "trigonometric", "verified")

# An unambiguous dominance: Sa near the query, Sb far away on the axis.
SA = Hypersphere([0.0, 0.0], 1.0)
SB = Hypersphere([100.0, 0.0], 1.0)
SQ = Hypersphere([-2.0, 0.0], 0.5)


class TestRegistry:
    def test_all_paper_criteria_registered(self):
        assert set(ALL_CRITERIA) <= set(available_criteria())

    def test_get_criterion_unknown_name(self):
        with pytest.raises(CriterionError, match="unknown criterion"):
            get_criterion("nope")

    def test_get_criterion_returns_fresh_instances(self):
        assert get_criterion("minmax") is not get_criterion("minmax")

    def test_duplicate_registration_rejected(self):
        class Duplicate(DominanceCriterion):
            name = "minmax"

            def _decide(self, sa, sb, sq):  # pragma: no cover
                return False

        with pytest.raises(CriterionError, match="registered twice"):
            register_criterion(Duplicate)

    def test_unnamed_registration_rejected(self):
        class Nameless(DominanceCriterion):
            def _decide(self, sa, sb, sq):  # pragma: no cover
                return False

        with pytest.raises(CriterionError, match="without a name"):
            register_criterion(Nameless)

    def test_repr_shows_flags(self):
        assert "correct" in repr(get_criterion("hyperbola"))
        assert "sound" in repr(get_criterion("hyperbola"))


class TestSharedBehaviour:
    @pytest.mark.parametrize("name", ALL_CRITERIA)
    def test_clear_dominance_detected(self, name):
        assert get_criterion(name).dominates(SA, SB, SQ)

    @pytest.mark.parametrize("name", ("hyperbola", "minmax", "mbr", "gp"))
    def test_clear_non_dominance_detected(self, name):
        # Roles of Sa and Sb swapped: Sb is obviously closer now.  Only
        # the *correct* criteria are obliged to answer False here; the
        # Trigonometric criterion famously answers True (its probes both
        # see a negative margin — see TestTrigonometricQuirks).
        assert not get_criterion(name).dominates(SB, SA, SQ)

    @pytest.mark.parametrize("name", ("hyperbola", "minmax", "mbr", "gp"))
    def test_overlapping_pair_never_dominates(self, name):
        a = Hypersphere([0.0, 0.0], 2.0)
        b = Hypersphere([1.0, 0.0], 2.0)
        assert not get_criterion(name).dominates(a, b, SQ)

    @pytest.mark.parametrize("name", ("hyperbola", "minmax", "mbr", "gp"))
    def test_self_dominance_is_false(self, name):
        assert not get_criterion(name).dominates(SA, SA, SQ)

    @pytest.mark.parametrize("name", ALL_CRITERIA)
    def test_dimension_mismatch_rejected(self, name):
        with pytest.raises(DimensionalityMismatchError):
            get_criterion(name).dominates(SA, SB, Hypersphere([0.0], 1.0))

    @pytest.mark.parametrize("name", ALL_CRITERIA)
    def test_callable_protocol(self, name):
        criterion = get_criterion(name)
        assert criterion(SA, SB, SQ) == criterion.dominates(SA, SB, SQ)

    @pytest.mark.parametrize("name", ALL_CRITERIA)
    def test_one_dimensional_space(self, name):
        a = Hypersphere([0.0], 0.5)
        b = Hypersphere([50.0], 0.5)
        q = Hypersphere([-1.0], 0.25)
        assert get_criterion(name).dominates(a, b, q)

    @pytest.mark.parametrize("name", ALL_CRITERIA)
    def test_point_spheres(self, name):
        a = Hypersphere([0.0, 0.0], 0.0)
        b = Hypersphere([10.0, 0.0], 0.0)
        q = Hypersphere([-1.0, 0.0], 0.0)
        assert get_criterion(name).dominates(a, b, q)


class TestTrigonometricQuirks:
    """The non-correct criterion's characteristic false positives."""

    def test_true_on_reversed_roles(self):
        # Both probes see a strongly negative margin -> same sign ->
        # the procedure answers True although Sb is clearly closer.
        assert get_criterion("trigonometric").dominates(SB, SA, SQ)

    def test_true_on_self_dominance(self):
        # ca == cb degenerates the surrogate to a constant; the single
        # probe's nonzero (negative) margin maps to True.
        assert get_criterion("trigonometric").dominates(SA, SA, SQ)

    def test_false_on_degenerate_zero_margin(self):
        a = Hypersphere([0.0, 0.0], 0.0)
        assert not get_criterion("trigonometric").dominates(a, a, SQ)


class TestConvenienceFunction:
    def test_default_method_is_hyperbola(self):
        assert dominates(SA, SB, SQ) is True

    def test_named_method(self):
        assert dominates(SA, SB, SQ, method="minmax") is True

    def test_unknown_method(self):
        with pytest.raises(CriterionError):
            dominates(SA, SB, SQ, method="bogus")


class TestTheoreticalFlags:
    def test_flags_match_table1(self):
        expected = {
            "hyperbola": (True, True),
            "minmax": (True, False),
            "mbr": (True, False),
            "gp": (True, False),
            "trigonometric": (False, True),
        }
        for name, (correct, sound) in expected.items():
            criterion = get_criterion(name)
            assert criterion.is_correct == correct, name
            assert criterion.is_sound == sound, name
