"""Numerical robustness: extreme scales, dimensions and degeneracies.

The dominance kernel squares radii twice (the quartic coefficients
involve ``rab^4``), so inputs spanning many orders of magnitude are the
natural way to break a naive implementation.  These tests pin the
behaviour at the extremes: no crashes, no NaN verdicts, and agreement
with the oracle wherever the configuration is decisively inside or
outside the dominance region.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import get_criterion, min_margin
from repro.core.batch import batch_evaluate
from repro.geometry.hypersphere import Hypersphere

HYPERBOLA = get_criterion("hyperbola")


def assert_decisive_agreement(sa, sb, sq):
    """Hyperbola matches the oracle unless the margin is borderline."""
    margin = min_margin(sa, sb, sq, resolution=1024) - (sa.radius + sb.radius)
    scale = 1.0 + sa.radius + sb.radius + float(np.abs(sq.center).max())
    if abs(margin) < 1e-9 * scale:
        return  # genuinely ambiguous at float resolution
    want = (not sa.overlaps(sb)) and margin > 0.0
    assert HYPERBOLA.dominates(sa, sb, sq) == want


class TestScaleExtremes:
    @pytest.mark.parametrize("scale", (1e-8, 1e-3, 1.0, 1e3, 1e8))
    def test_uniform_rescaling_preserves_the_verdict(self, scale):
        """Dominance is scale-invariant; the decision must be too."""
        base = (
            Hypersphere([0.0, 0.0], 1.0),
            Hypersphere([10.0, 0.0], 1.0),
            Hypersphere([-3.0, 1.0], 1.5),
        )
        scaled = tuple(s.scaled(scale) for s in base)
        assert HYPERBOLA.dominates(*scaled) == HYPERBOLA.dominates(*base)

    @pytest.mark.parametrize("scale", (1e-6, 1e6))
    def test_random_configurations_at_extreme_scales(self, scale, rng):
        for _ in range(60):
            d = int(rng.integers(1, 5))
            ca = rng.normal(0.0, 10.0, d) * scale
            direction = rng.normal(0.0, 1.0, d)
            direction /= np.linalg.norm(direction)
            ra = float(abs(rng.normal(0.0, 1.0))) * scale
            rb = float(abs(rng.normal(0.0, 1.0))) * scale
            cb = ca + direction * (ra + rb + float(rng.uniform(0.5, 5.0)) * scale)
            cq = ca - direction * float(rng.uniform(0.0, 5.0)) * scale
            rq = float(abs(rng.normal(0.0, 1.0))) * scale
            assert_decisive_agreement(
                Hypersphere(ca, ra), Hypersphere(cb, rb), Hypersphere(cq, rq)
            )

    def test_mixed_scales_radius_tiny_vs_huge_distance(self):
        sa = Hypersphere([0.0, 0.0], 1e-9)
        sb = Hypersphere([1e9, 0.0], 1e-9)
        sq = Hypersphere([-1e3, 0.0], 1.0)
        assert HYPERBOLA.dominates(sa, sb, sq)
        assert not HYPERBOLA.dominates(sb, sa, sq)

    def test_far_offset_configuration(self):
        """The whole scene translated far from the origin."""
        offset = np.array([1e7, -1e7])
        sa = Hypersphere(offset + [0.0, 0.0], 1.0)
        sb = Hypersphere(offset + [10.0, 0.0], 1.0)
        sq = Hypersphere(offset + [-3.0, 0.0], 0.5)
        assert HYPERBOLA.dominates(sa, sb, sq)


class TestDimensionExtremes:
    @pytest.mark.parametrize("d", (32, 128, 512))
    def test_high_dimensional_verdicts(self, d, rng):
        ca = rng.normal(0.0, 1.0, d)
        direction = rng.normal(0.0, 1.0, d)
        direction /= np.linalg.norm(direction)
        sa = Hypersphere(ca, 0.5)
        sb = Hypersphere(ca + direction * 20.0, 0.5)
        sq = Hypersphere(ca - direction * 2.0, 0.5)
        assert HYPERBOLA.dominates(sa, sb, sq)
        assert not HYPERBOLA.dominates(sb, sa, sq)

    def test_all_criteria_return_bools_in_high_d(self, rng):
        d = 256
        spheres = [
            Hypersphere(rng.normal(0, 5, d), float(abs(rng.normal(0, 1))))
            for _ in range(3)
        ]
        for name in ("hyperbola", "minmax", "mbr", "gp", "trigonometric"):
            verdict = get_criterion(name).dominates(*spheres)
            assert isinstance(verdict, bool) or verdict in (True, False)


class TestDegenerateShapes:
    def test_all_three_identical_points(self):
        p = Hypersphere([1.0, 2.0], 0.0)
        for name in ("hyperbola", "minmax", "mbr", "gp"):
            assert not get_criterion(name).dominates(p, p, p)

    def test_nearly_touching_spheres(self):
        """The hyperbola is extremely eccentric (rab -> 2*alpha).

        The dominance region degenerates to a needle around the focal
        axis: its half-width at x = -5 is sqrt(gap_excess * (25 - 1))
        (plus higher-order terms), so whether a given query ball fits is
        a genuine geometric question — checked against the needle-width
        closed form and, independently, against the oracle.
        """
        for gap_excess in (1e-3, 1e-6, 1e-9):
            sa = Hypersphere([0.0, 0.0], 1.0)
            sb = Hypersphere([2.0 + gap_excess, 0.0], 1.0)
            needle_half_width = np.sqrt(
                (2.0 + gap_excess) ** 2 / 4.0 - 1.0
            ) * np.sqrt(24.0)
            for rq, expected in (
                (needle_half_width * 0.2, True),
                (needle_half_width * 5.0, False),
            ):
                sq = Hypersphere([-5.0, 0.0], float(rq))
                assert HYPERBOLA.dominates(sa, sb, sq) == expected, (
                    gap_excess,
                    rq,
                )
                assert_decisive_agreement(sa, sb, sq)

    def test_nearly_degenerate_radii(self):
        """rab tiny but nonzero: the bisector threshold path."""
        sa = Hypersphere([0.0, 0.0], 1e-300)
        sb = Hypersphere([10.0, 0.0], 1e-300)
        assert HYPERBOLA.dominates(sa, sb, Hypersphere([-1.0, 0.0], 1.0))
        assert not HYPERBOLA.dominates(sa, sb, Hypersphere([4.9, 0.0], 0.5))

    def test_query_far_beyond_the_scene(self):
        sa = Hypersphere([0.0, 0.0], 1.0)
        sb = Hypersphere([10.0, 0.0], 1.0)
        sq = Hypersphere([-1e12, 3.0], 1.0)
        assert HYPERBOLA.dominates(sa, sb, sq)

    def test_batch_kernels_never_produce_nan_verdicts(self, rng):
        n, d = 200, 3
        magnitudes = 10.0 ** rng.uniform(-8, 8, n)
        ca = rng.normal(0, 1, (n, d)) * magnitudes[:, None]
        cb = rng.normal(0, 1, (n, d)) * magnitudes[:, None]
        cq = rng.normal(0, 1, (n, d)) * magnitudes[:, None]
        ra = np.abs(rng.normal(0, 1, n)) * magnitudes
        rb = np.abs(rng.normal(0, 1, n)) * magnitudes
        rq = np.abs(rng.normal(0, 1, n)) * magnitudes
        for name in ("hyperbola", "minmax", "mbr", "gp", "trigonometric"):
            out = batch_evaluate(name, ca, cb, cq, ra, rb, rq)
            assert out.dtype == np.bool_
            assert out.shape == (n,)

    def test_scalar_batch_agreement_across_magnitudes(self, rng):
        n, d = 150, 2
        magnitudes = 10.0 ** rng.uniform(-5, 5, n)
        ca = rng.normal(0, 1, (n, d)) * magnitudes[:, None]
        direction = rng.normal(0, 1, (n, d))
        direction /= np.linalg.norm(direction, axis=1, keepdims=True)
        ra = np.abs(rng.normal(0, 0.3, n)) * magnitudes
        rb = np.abs(rng.normal(0, 0.3, n)) * magnitudes
        cb = ca + direction * (ra + rb + magnitudes)[:, None]
        cq = ca - direction * (rng.uniform(0, 2, n) * magnitudes)[:, None]
        rq = np.abs(rng.normal(0, 0.3, n)) * magnitudes
        vec = batch_evaluate("hyperbola", ca, cb, cq, ra, rb, rq)
        for i in range(n):
            scalar = HYPERBOLA.dominates(
                Hypersphere(ca[i], float(ra[i])),
                Hypersphere(cb[i], float(rb[i])),
                Hypersphere(cq[i], float(rq[i])),
            )
            assert vec[i] == scalar, i
