"""Smoke tests: every shipped example must run and tell a true story."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "dominates(Sa, Sb, Sq) = True" in out
        assert "hyperbola" in out

    def test_criteria_comparison(self, capsys):
        out = run_example("criteria_comparison.py", capsys)
        assert "FALSE POSITIVE" in out  # trigonometric's lemma-11 regime
        assert "false negative" in out  # minmax / mbr misses
        assert out.count("ground truth (numerical oracle)") == 3

    def test_uncertain_gps_knn(self, capsys):
        out = run_example("uncertain_gps_knn.py", capsys)
        assert "exact answer (Hyperbola)" in out
        assert "Definition-2 ground truth" in out

    def test_image_retrieval(self, capsys):
        out = run_example("image_retrieval_sstree.py", capsys)
        assert "SS-tree: height" in out
        assert "hyperbola" in out

    def test_robust_ranking(self, capsys):
        out = run_example("robust_ranking.py", capsys)
        assert "dominates" in out
        assert "monte-carlo" in out

    def test_drifting_uncertainty(self, capsys):
        out = run_example("drifting_uncertainty.py", capsys)
        assert "guarantee survives" in out
        assert "river-weighted" in out
