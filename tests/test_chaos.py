"""Chaos suite: the degradation invariant across every fault seam.

The contract (stated in :mod:`repro.resilience.partial`): **faults
change what is reported, never silently what is true**.  For every
``seam x mode`` combination of :mod:`repro.robust.faults`, a query
result that carries *no* degradation flag (no absorbed faults, no
uncertain decisions, no degraded checks, complete) must equal the
fault-free answer exactly; any deviation must be flagged.  Snapshot
faults may only surface as typed errors; clock faults may only
exhaust a budget conservatively.

This file is also the body of ``make chaos`` / the CI chaos job.
"""

from __future__ import annotations

import math

import pytest

from repro.data.synthetic import synthetic_dataset
from repro.data.workload import knn_queries
from repro.exceptions import SnapshotError
from repro.geometry.hypersphere import Hypersphere
from repro.index import snapshot as snap
from repro.index.sstree import SSTree
from repro.queries.dominating import dominance_scores
from repro.queries.knn import knn_query
from repro.queries.rknn import rnn_candidates
from repro.resilience import Budget, PartialResult, scope
from repro.robust import faults

QUERY_SEAMS = ("quartic", "frame", "distance", "index")
N, DIMENSION, K = 130, 3, 8


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset(N, DIMENSION, mu=0.15, seed=17)


@pytest.fixture(scope="module")
def tree(dataset):
    return SSTree.bulk_load(dataset.items(), max_entries=8)


@pytest.fixture(scope="module")
def queries(dataset):
    return list(knn_queries(dataset, count=3, seed=23))


@pytest.fixture(scope="module")
def clean_answers(tree, queries):
    """Fault-free kNN baselines, one per query, per criterion."""
    return {
        criterion: [
            knn_query(tree, query, K, criterion=criterion) for query in queries
        ]
        for criterion in ("hyperbola", "verified")
    }


def _flagged(result) -> bool:
    """Whether *result* admits any deviation from the clean answer."""
    return (
        result.absorbed_faults > 0
        or result.uncertain_decisions > 0
        or result.degraded_checks > 0
    )


class TestQuerySeamInvariant:
    """kNN under corrupted kernels and index bounds never silently lies."""

    @pytest.mark.parametrize("seam", QUERY_SEAMS)
    @pytest.mark.parametrize("mode", faults.MODES)
    @pytest.mark.parametrize("every", (1, 3))
    def test_unflagged_knn_equals_clean(
        self, tree, queries, clean_answers, seam, mode, every
    ):
        for query, clean in zip(queries, clean_answers["verified"]):
            with faults.inject(seam, mode, every=every):
                result = knn_query(tree, query, K, criterion="verified")
            assert not isinstance(result, PartialResult)
            # distk is a reported statistic: the perturb mode nudges it
            # by its 1e-12 magnitude without touching the answer set,
            # so it is compared up to that certified bound.
            deviates = result.key_set() != clean.key_set() or not math.isclose(
                result.distk, clean.distk, rel_tol=1e-9
            )
            assert not deviates or _flagged(result), (
                f"silent deviation under {seam}/{mode}: "
                f"{sorted(result.key_set() ^ clean.key_set())}"
            )

    @pytest.mark.parametrize("seam", QUERY_SEAMS)
    def test_raising_kernels_are_tallied_as_absorbed(self, tree, queries, seam):
        # With the plain criterion there is no escalation ladder to hide
        # behind: every explosion must reach a query-layer guard and be
        # counted, never swallowed silently.
        hits = 0
        absorbed = 0
        for query in queries:
            with faults.inject(seam, "raise") as fault:
                result = knn_query(tree, query, K)
            hits += fault.hits
            absorbed += result.absorbed_faults
        assert hits > 0, f"the {seam} seam never fired during kNN"
        assert absorbed > 0

    @pytest.mark.parametrize("mode", ("nan", "overflow", "raise"))
    def test_index_faults_are_absorbed_without_changing_the_answer(
        self, tree, queries, clean_answers, mode
    ):
        # Corrupted node bounds collapse to "never prune": with every
        # bound poisoned the traversal degenerates to a full scan and
        # the answer is *exactly* the clean one, only more expensive.
        for query, clean in zip(queries, clean_answers["hyperbola"]):
            with faults.inject("index", mode):
                result = knn_query(tree, query, K)
            assert result.key_set() == clean.key_set()
            assert result.distk == clean.distk
            assert result.absorbed_faults > 0

    def test_raising_criterion_keeps_rnn_candidates(self, dataset):
        # Refute-only degradation: a broken criterion cannot prove a
        # prune safe, so the candidate set only ever widens.
        items = list(dataset.items())[:60]
        query = Hypersphere([100.0, 100.0, 100.0], 0.1)
        clean = rnn_candidates(items, query)
        with faults.inject("quartic", "raise", every=2):
            faulted = rnn_candidates(items, query)
        assert set(clean) <= set(faulted)

    def test_raising_kernel_only_undercounts_dominance_scores(self, dataset):
        items = list(dataset.items())[:50]
        query = Hypersphere([100.0, 100.0, 100.0], 0.2)
        clean = dominance_scores(items, query)
        with faults.inject("quartic", "raise", every=2):
            faulted = dominance_scores(items, query)
        assert [s.key for s in faulted] == [s.key for s in clean]
        assert all(
            got.score <= want.score for got, want in zip(faulted, clean)
        )


class TestSnapshotSeamInvariant:
    """Disk faults surface as typed errors, never as a wrong index."""

    @pytest.mark.parametrize("mode", faults.MODES)
    @pytest.mark.parametrize("every", (1, 4))
    def test_snapshot_faults_never_load_a_wrong_index(
        self, tree, queries, clean_answers, tmp_path, mode, every
    ):
        path = tmp_path / f"chaos-{mode}-{every}.snap"
        try:
            with faults.inject("snapshot", mode, every=every):
                snap.save(tree, path)
                loaded = snap.load(path)
        except (SnapshotError, faults.FaultInjected):
            return  # a typed refusal is the honest outcome
        # The fault happened to miss every load-relevant byte: then the
        # loaded index must answer exactly like the original.
        for query, clean in zip(queries, clean_answers["hyperbola"]):
            result = knn_query(loaded, query, K)
            assert result.key_set() == clean.key_set()
            assert result.distk == clean.distk


class TestClockSeamInvariant:
    """A broken clock degrades budgeted queries, never unbudgeted ones."""

    @pytest.mark.parametrize("mode", faults.MODES)
    def test_budgeted_query_honours_the_invariant(
        self, tree, queries, clean_answers, mode
    ):
        for query, clean in zip(queries, clean_answers["hyperbola"]):
            with faults.inject("clock", mode):
                with scope(Budget(deadline_s=3600.0)):
                    result = knn_query(tree, query, K)
            assert isinstance(result, PartialResult)
            deviates = result.key_set() != clean.key_set()
            assert not deviates or result.report.degraded

    @pytest.mark.parametrize("mode", ("nan", "overflow", "raise"))
    def test_unreadable_clock_exhausts_conservatively(self, tree, queries, mode):
        with faults.inject("clock", mode):
            with scope(Budget(deadline_s=3600.0)):
                result = knn_query(tree, queries[0], K)
        assert not result.complete
        assert result.report.exhausted == "clock"

    def test_unbudgeted_queries_ignore_the_clock(
        self, tree, queries, clean_answers
    ):
        for query, clean in zip(queries, clean_answers["hyperbola"]):
            with faults.inject("clock", "raise"):
                result = knn_query(tree, query, K)
            assert result.key_set() == clean.key_set()


class TestCombinedPressure:
    """Budget exhaustion and kernel faults composing stay honest."""

    def test_faulted_and_budgeted_knn_is_flagged(self, tree, queries):
        with faults.inject("index", "nan"):
            with scope(Budget(max_candidates=25)):
                result = knn_query(tree, queries[0], K)
        assert isinstance(result, PartialResult)
        assert not result.complete
        assert result.report.degraded
        assert result.report.absorbed_faults > 0

    def test_exhausted_budget_with_raising_criterion_never_raises(
        self, tree, queries
    ):
        with faults.inject("quartic", "raise"):
            with scope(Budget(max_candidates=25)):
                result = knn_query(tree, queries[0], K, criterion="verified")
        assert isinstance(result, PartialResult)
        assert result.report.degraded
