"""Write-ahead log unit tests: framing, rotation, recovery, seams.

The recovery contract under test (stated in :mod:`repro.stream.wal`):
**truncate at the first bad frame**.  Everything before a torn or
CRC-failing frame — exactly the acked history — survives recovery;
everything at and after it (including later segments) is dropped.  A
CRC-valid but semantically malformed payload is a software bug and must
surface as a typed :class:`~repro.exceptions.WalCorruptionError`, never
as silent loss.
"""

from __future__ import annotations

import json
import os
import struct
import zlib

import pytest

from repro.exceptions import WalCorruptionError, WalError
from repro.geometry.hypersphere import Hypersphere
from repro.robust import faults
from repro.stream import wal as wal_mod
from repro.stream.wal import MAGIC, Mutation, WriteAheadLog

_U32 = struct.Struct("<I")


def sphere(x: float = 1.0, radius: float = 0.5) -> Hypersphere:
    return Hypersphere([x, 2.0, 3.0], radius)


def fill(wal: WriteAheadLog, count: int) -> "list[Mutation]":
    acked = []
    for i in range(count):
        acked.append(wal.append(Mutation.insert(i, sphere(float(i)))))
    return acked


def segment_files(directory: str) -> "list[str]":
    return sorted(n for n in os.listdir(directory) if n.startswith("wal-"))


class TestFraming:
    def test_round_trip_insert_and_delete(self, tmp_path):
        with WriteAheadLog.open(str(tmp_path)) as wal:
            a = wal.append(Mutation.insert("a", sphere()))
            b = wal.append(Mutation.delete("a"))
            assert (a.seq, b.seq) == (1, 2)
        recovered = WriteAheadLog.open(str(tmp_path))
        assert [m.seq for m in recovered.records()] == [1, 2]
        first, second = recovered.replayed
        assert first.op == "insert" and first.sphere() == sphere()
        assert second.op == "delete" and second.key == "a"
        assert recovered.truncated_frames == 0
        recovered.close()

    def test_payload_round_trip_preserves_key_types(self):
        for key in (7, "name", 3.5, (1, "x")):
            m = Mutation.insert(key, sphere(), seq=9)
            assert Mutation.from_payload(m.to_payload()) == m

    def test_non_finite_geometry_is_unserialisable(self):
        bad = Mutation(seq=1, op="insert", key="a",
                       center=(float("nan"), 0.0, 0.0), radius=1.0)
        with pytest.raises(WalError):
            bad.to_payload()

    def test_delete_carries_no_sphere(self):
        with pytest.raises(WalError):
            Mutation.delete("a", seq=1).sphere()

    @pytest.mark.parametrize(
        "payload",
        [
            b"not json at all",
            b"[1,2,3]",
            b'{"op":"insert"}',
            b'{"seq":1,"op":"frobnicate","key":["i",1]}',
            b'{"seq":1,"op":"insert","key":["i",1],"center":"x","radius":1}',
        ],
    )
    def test_crc_valid_garbage_is_a_typed_corruption(self, tmp_path, payload):
        # A frame that passes the CRC but decodes to nonsense is a bug,
        # not a torn write: recovery must raise, not truncate silently.
        with WriteAheadLog.open(str(tmp_path)) as wal:
            wal.append(Mutation.insert("a", sphere()))
            path = os.path.join(str(tmp_path), segment_files(str(tmp_path))[0])
        with open(path, "ab") as handle:
            handle.write(
                _U32.pack(len(payload)) + payload
                + _U32.pack(zlib.crc32(payload) & 0xFFFFFFFF)
            )
        with pytest.raises(WalCorruptionError):
            WriteAheadLog.open(str(tmp_path))

    def test_too_small_segment_bytes_is_refused(self, tmp_path):
        with pytest.raises(WalError):
            WriteAheadLog(str(tmp_path), segment_bytes=8)


class TestRotationAndSeq:
    def test_rotation_keeps_every_record_and_order(self, tmp_path):
        with WriteAheadLog.open(str(tmp_path), segment_bytes=256) as wal:
            acked = fill(wal, 30)
        assert len(segment_files(str(tmp_path))) > 1
        recovered = WriteAheadLog.open(str(tmp_path), segment_bytes=256)
        assert [m.seq for m in recovered.records()] == [m.seq for m in acked]
        assert recovered.next_seq == 31
        recovered.close()

    def test_records_never_split_across_segments(self, tmp_path):
        # Every segment must parse standalone: rotation happens before
        # an append that would overflow, so no frame straddles files.
        with WriteAheadLog.open(str(tmp_path), segment_bytes=256) as wal:
            fill(wal, 30)
        for name in segment_files(str(tmp_path)):
            scan = wal_mod._scan_segment(os.path.join(str(tmp_path), name))
            assert not scan.torn

    def test_seq_monotone_across_truncate_and_reopen(self, tmp_path):
        with WriteAheadLog.open(str(tmp_path)) as wal:
            fill(wal, 5)
            wal.truncate()
            assert wal.next_seq == 6
            assert wal.append(Mutation.delete("x")).seq == 6
        recovered = WriteAheadLog.open(str(tmp_path))
        assert recovered.next_seq == 7

    def test_truncate_then_crash_still_remembers_the_high_water_mark(
        self, tmp_path
    ):
        # The empty post-truncate segment's header hint is the only
        # durable copy of the seq counter; a reopen with zero records
        # must keep numbering from it instead of restarting at 1.
        with WriteAheadLog.open(str(tmp_path)) as wal:
            fill(wal, 9)
            removed = wal.truncate()
            assert removed == 1
        recovered = WriteAheadLog.open(str(tmp_path))
        assert list(recovered.records()) == []
        assert recovered.append(Mutation.delete("y")).seq == 10
        recovered.close()


class TestRecovery:
    def _tail_segment(self, directory: str) -> str:
        return os.path.join(directory, segment_files(directory)[-1])

    def test_torn_tail_keeps_the_good_prefix(self, tmp_path):
        with WriteAheadLog.open(str(tmp_path)) as wal:
            fill(wal, 4)
        path = self._tail_segment(str(tmp_path))
        with open(path, "ab") as handle:
            handle.write(_U32.pack(999))  # length header, then the crash
        recovered = WriteAheadLog.open(str(tmp_path))
        assert [m.seq for m in recovered.records()] == [1, 2, 3, 4]
        assert recovered.truncated_frames == 1
        # The bad tail is physically gone: a second open is clean.
        recovered.close()
        again = WriteAheadLog.open(str(tmp_path))
        assert again.truncated_frames == 0
        again.close()

    def test_partial_payload_is_truncated(self, tmp_path):
        with WriteAheadLog.open(str(tmp_path)) as wal:
            fill(wal, 3)
        path = self._tail_segment(str(tmp_path))
        payload = b'{"seq":4,"op":"delete","key":["i",0]}'
        with open(path, "ab") as handle:
            handle.write(_U32.pack(len(payload)) + payload[: len(payload) // 2])
        recovered = WriteAheadLog.open(str(tmp_path))
        assert [m.seq for m in recovered.records()] == [1, 2, 3]
        recovered.close()

    def test_crc_mismatch_is_truncated(self, tmp_path):
        with WriteAheadLog.open(str(tmp_path)) as wal:
            fill(wal, 3)
        path = self._tail_segment(str(tmp_path))
        # Flip one payload byte of the final frame in place.
        with open(path, "r+b") as handle:
            handle.seek(-6, os.SEEK_END)
            byte = handle.read(1)
            handle.seek(-6, os.SEEK_END)
            handle.write(bytes([byte[0] ^ 0xFF]))
        recovered = WriteAheadLog.open(str(tmp_path))
        assert [m.seq for m in recovered.records()] == [1, 2]
        assert recovered.truncated_frames == 1
        recovered.close()

    def test_later_segments_after_a_bad_frame_are_deleted(self, tmp_path):
        with WriteAheadLog.open(str(tmp_path), segment_bytes=256) as wal:
            fill(wal, 30)
        names = segment_files(str(tmp_path))
        assert len(names) >= 3
        # Corrupt the *first* segment's final frame: everything in the
        # later segments is beyond the first bad frame and must go.
        first = os.path.join(str(tmp_path), names[0])
        with open(first, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            handle.write(b"\xff")
        recovered = WriteAheadLog.open(str(tmp_path), segment_bytes=256)
        seqs = [m.seq for m in recovered.records()]
        assert seqs == list(range(1, len(seqs) + 1))
        assert len(segment_files(str(tmp_path))) >= 1
        # Appends continue past the durable prefix, not past the loss.
        assert recovered.append(Mutation.delete("z")).seq == len(seqs) + 1
        recovered.close()

    def test_foreign_magic_recovers_to_empty(self, tmp_path):
        with open(os.path.join(str(tmp_path), "wal-00000001.log"), "wb") as f:
            f.write(b"NOTMYWAL" + b"\x00" * 16)
        recovered = WriteAheadLog.open(str(tmp_path))
        assert list(recovered.records()) == []
        assert recovered.truncated_frames == 1
        recovered.close()


class TestFaultSeams:
    def test_raising_append_acks_nothing(self, tmp_path):
        with WriteAheadLog.open(str(tmp_path)) as wal:
            fill(wal, 2)
            with faults.inject("wal_append", "raise"):
                with pytest.raises(faults.FaultInjected):
                    wal.append(Mutation.insert("x", sphere()))
        recovered = WriteAheadLog.open(str(tmp_path))
        # The failed append is not in the durable history; because no
        # bytes of it were written, the prefix is exactly the acks.
        assert [m.seq for m in recovered.records()] == [1, 2]
        recovered.close()

    @pytest.mark.parametrize("mode", ("nan", "overflow", "perturb"))
    def test_corrupted_append_bytes_recover_to_the_acked_prefix(
        self, tmp_path, mode
    ):
        with WriteAheadLog.open(str(tmp_path)) as wal:
            fill(wal, 2)
            # Only the 3rd record's frame is corrupted on disk; its ack
            # was a lie the recovery contract is allowed to drop.
            with faults.inject("wal_append", mode, every=1):
                wal.append(Mutation.insert("x", sphere()))
        recovered = WriteAheadLog.open(str(tmp_path))
        assert [m.seq for m in recovered.records()] == [1, 2]
        assert recovered.truncated_frames >= 1
        recovered.close()

    @pytest.mark.parametrize("mode", ("nan", "overflow", "perturb", "raise"))
    def test_read_faults_surface_as_prefix_recovery(self, tmp_path, mode):
        with WriteAheadLog.open(str(tmp_path)) as wal:
            fill(wal, 6)
        with faults.inject("wal_read", mode, every=5):
            recovered = WriteAheadLog.open(str(tmp_path))
        seqs = [m.seq for m in recovered.records()]
        assert seqs == list(range(1, len(seqs) + 1))
        assert len(seqs) <= 6
        recovered.close()

    def test_skipped_fsync_still_acks(self, tmp_path):
        # The lying-disk mode: the write lands in the page cache and the
        # sync silently no-ops.  Without a crash this is invisible — the
        # crash matrix (test_stream_chaos) pairs it with a kill.
        with WriteAheadLog.open(str(tmp_path)) as wal:
            with faults.inject("wal_fsync", "nan") as fault:
                acked = wal.append(Mutation.insert("x", sphere()))
            assert fault.hits > 0
            assert acked.seq == 1

    def test_raising_fsync_blocks_the_ack(self, tmp_path):
        with WriteAheadLog.open(str(tmp_path)) as wal:
            with faults.inject("wal_fsync", "raise"):
                with pytest.raises(faults.FaultInjected):
                    wal.append(Mutation.insert("x", sphere()))
            # The seq was not consumed by the failed append.
            assert wal.append(Mutation.insert("y", sphere())).seq == 1
