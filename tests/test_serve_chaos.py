"""Chaos suite for the serving layer: the invariant, now over HTTP.

The degradation contract extends across the network boundary: under
**every** serve-relevant fault seam × mode, the server

- never returns a wrong certified verdict — a response *not* flagged
  degraded must equal the fault-free baseline exactly;
- never answers 5xx for overload or degradation — only **200**
  (clean), **206** (degraded, with a serialised resilience report) or
  **429** (shed, with Retry-After) may appear.

Every scenario boots a real asyncio server on an ephemeral port and
talks to it over TCP; nothing is stubbed.  The load test at the bottom
drives a concurrent burst into a deliberately tiny admission envelope
and checks bounded tail latency plus nonzero shed/degraded counters in
the exported ``/metrics`` text.

This file rides along with ``make chaos`` / the CI chaos job.
"""

from __future__ import annotations

import asyncio
import json
import math
import time

import pytest

from repro import obs
from repro.data.synthetic import synthetic_dataset
from repro.data.workload import knn_queries
from repro.index import snapshot as snapshot_io
from repro.index.sstree import SSTree
from repro.robust import faults
from repro.serve.admission import AdmissionController
from repro.serve.app import ServeApp, start_server
from repro.serve.retry import RetryPolicy
from repro.serve.smoke import request

#: Seams with a path into the serving stack: the serve-native seams
#: plus the kernel/index seams a query touches while executing.
SERVE_SEAMS = ("handler", "queue", "clock", "index", "quartic", "frame", "distance")
ALLOWED_STATUSES = {200, 206, 429}
N, DIMENSION, K, REQUESTS = 110, 3, 6, 6


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset(N, DIMENSION, mu=0.15, seed=29)


@pytest.fixture(scope="module")
def snapshot_path(dataset, tmp_path_factory):
    tree = SSTree.bulk_load(dataset.items(), max_entries=8)
    path = tmp_path_factory.mktemp("serve-chaos") / "chaos.snap"
    snapshot_io.save(tree, path)
    return str(path)


@pytest.fixture(scope="module")
def bodies(dataset):
    # The certified criterion: a non-degraded answer is then a
    # *certified* verdict, which is exactly what must never be wrong.
    return [
        {
            "kind": "knn",
            "index": "default",
            "center": [float(c) for c in sphere.center],
            "radius": float(sphere.radius),
            "k": K,
            "criterion": "verified",
        }
        for sphere in knn_queries(dataset, count=REQUESTS, seed=31)
    ]


def _boot_and_fire(snapshot_path, bodies, seam=None, mode=None, every=1):
    """One scenario: boot, fire *bodies* (under a seam), return responses."""
    app = ServeApp.from_snapshots(
        {"default": snapshot_path},
        retry_policy=RetryPolicy(backoff_s=0.0, hedge_delay_s=0.0),
    )

    async def go():
        server = await start_server(app)
        host, port = server.sockets[0].getsockname()[:2]
        responses = []
        try:
            for body in bodies:
                status, headers, raw = await request(
                    host, port, "POST", "/query", body=body
                )
                responses.append((status, headers, json.loads(raw)))
        finally:
            server.close()
            await server.wait_closed()
        return responses

    try:
        if seam is None:
            return asyncio.run(go())
        with faults.inject(seam, mode, every=every):
            return asyncio.run(go())
    finally:
        app.close()


@pytest.fixture(scope="module")
def baseline(snapshot_path, bodies):
    """Fault-free responses: every one must be a clean 200."""
    responses = _boot_and_fire(snapshot_path, bodies)
    assert [status for status, _, _ in responses] == [200] * len(bodies)
    return [payload["result"] for _, _, payload in responses]


def _assert_result_matches(result, clean) -> None:
    assert set(result["keys"]) == set(clean["keys"])
    assert math.isclose(result["distk"], clean["distk"], rel_tol=1e-9)


class TestServeSeamMatrix:
    @pytest.mark.parametrize("seam", SERVE_SEAMS)
    @pytest.mark.parametrize("mode", faults.MODES)
    def test_never_wrong_and_never_5xx(
        self, snapshot_path, bodies, baseline, seam, mode
    ):
        responses = _boot_and_fire(
            snapshot_path, bodies, seam=seam, mode=mode, every=2
        )
        for (status, headers, payload), clean in zip(responses, baseline):
            assert status in ALLOWED_STATUSES, (
                f"{seam}/{mode}: status {status} outside 200/206/429: {payload}"
            )
            if status == 429:
                # Sheds carry an actionable Retry-After and a reason.
                assert float(headers["retry-after"]) > 0.0
                assert payload["reason"] in (
                    "queue_full",
                    "rate_limited",
                    "breaker_open",
                )
                continue
            if status == 200:
                # Unflagged ⇒ certified ⇒ must equal the clean answer.
                assert payload["degraded"] is False
                _assert_result_matches(payload["result"], clean)
            else:
                # 206 ⇒ the report must actually claim degradation.
                assert payload["degraded"] is True
                assert payload["report"]["degraded"] is True

    @pytest.mark.parametrize("mode", faults.MODES)
    def test_queue_seam_sheds_deterministically(
        self, snapshot_path, bodies, mode
    ):
        responses = _boot_and_fire(
            snapshot_path, bodies, seam="queue", mode=mode, every=2
        )
        statuses = [status for status, _, _ in responses]
        assert statuses[0] == 429  # the seam fires on the first probe call
        assert 429 in statuses and 200 in statuses
        assert set(statuses) <= {200, 429}

    @pytest.mark.parametrize("mode", ("nan", "overflow", "raise"))
    def test_handler_explosions_never_5xx(
        self, snapshot_path, bodies, baseline, mode
    ):
        responses = _boot_and_fire(
            snapshot_path, bodies, seam="handler", mode=mode, every=1
        )
        statuses = [status for status, _, _ in responses]
        assert set(statuses) <= ALLOWED_STATUSES
        if mode == "raise":
            # Every attempt explodes: nothing may come back clean.
            for status, _, payload in responses:
                if status != 429:
                    assert status == 206 and payload["degraded"] is True


class TestServeLoad:
    def test_burst_bounded_p99_and_nonzero_shed_degraded(
        self, snapshot_path, bodies
    ):
        app = ServeApp.from_snapshots(
            {"default": snapshot_path},
            admission=AdmissionController(max_concurrency=2, max_queue=2),
            retry_policy=RetryPolicy(backoff_s=0.0, hedge_delay_s=0.0),
        )
        burst = [dict(bodies[i % len(bodies)]) for i in range(40)]

        async def one(host, port, body):
            started = time.perf_counter()
            status, _, raw = await request(
                host, port, "POST", "/query", body=body
            )
            return status, json.loads(raw), time.perf_counter() - started

        async def go():
            server = await start_server(app)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                with faults.inject("handler", "raise", every=2):
                    outcomes = await asyncio.gather(
                        *(one(host, port, body) for body in burst)
                    )
                metrics_status, _, metrics_raw = await request(
                    host, port, "GET", "/metrics"
                )
            finally:
                server.close()
                await server.wait_closed()
            return outcomes, metrics_status, metrics_raw.decode()

        with obs.enabled_scope(True), obs.scope():
            try:
                outcomes, metrics_status, metrics_text = asyncio.run(go())
            finally:
                app.close()

        statuses = [status for status, _, _ in outcomes]
        latencies = sorted(duration for _, _, duration in outcomes)
        assert set(statuses) <= ALLOWED_STATUSES
        # The tiny envelope must shed, the fault seam must degrade, and
        # the clean path must still answer.
        assert statuses.count(429) > 0
        assert statuses.count(206) > 0
        assert statuses.count(200) > 0
        # Bounded tail: admission keeps queueing out of the latency
        # path, so even the p99 of a 20x-oversubscribed burst is tame.
        p99 = latencies[min(len(latencies) - 1, int(0.99 * len(latencies)))]
        assert p99 < 5.0
        # The exported metrics agree with the observed statuses.
        assert metrics_status == 200

        def metric_value(family: str) -> float:
            for line in metrics_text.splitlines():
                if line.startswith(family + " "):
                    return float(line.split()[1])
            return 0.0

        assert metric_value("repro_serve_responses_shed_total") > 0
        assert metric_value("repro_serve_responses_degraded_total") > 0
        assert metric_value("repro_serve_admission_admitted_total") > 0
        assert "repro_serve_latency_s" in metrics_text
