"""Unit and property tests for the VP-tree index (extension)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.data.synthetic import synthetic_dataset
from repro.exceptions import IndexStructureError
from repro.geometry.distance import max_dist, min_dist
from repro.geometry.hypersphere import Hypersphere
from repro.index.vptree import VPTree
from repro.queries.knn import knn_query, knn_reference


def make_items(rng, n: int, d: int):
    return [
        (i, Hypersphere(rng.normal(0.0, 10.0, d), float(abs(rng.normal(0.0, 1.0)))))
        for i in range(n)
    ]


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(IndexStructureError):
            VPTree.build([])

    def test_small_capacity_rejected(self, rng):
        with pytest.raises(IndexStructureError):
            VPTree.build(make_items(rng, 10, 2), leaf_capacity=1)

    def test_mixed_dimensions_rejected(self):
        with pytest.raises(IndexStructureError):
            VPTree.build(
                [("a", Hypersphere([0.0], 1.0)), ("b", Hypersphere([0.0, 0.0], 1.0))]
            )

    def test_single_item(self):
        tree = VPTree.build([("only", Hypersphere([1.0, 2.0], 0.5))])
        assert len(tree) == 1
        assert tree.root.is_leaf
        tree.validate()

    def test_all_items_preserved(self, rng):
        items = make_items(rng, 500, 3)
        tree = VPTree.build(items)
        tree.validate()
        assert sorted(key for key, _ in tree) == list(range(500))

    def test_duplicate_centers_terminate(self):
        items = [(i, Hypersphere([1.0, 1.0], 0.1)) for i in range(100)]
        tree = VPTree.build(items, leaf_capacity=4)
        tree.validate()
        assert len(tree) == 100

    def test_deterministic_for_fixed_seed(self, rng):
        items = make_items(rng, 200, 2)
        a = VPTree.build(items, seed=3)
        b = VPTree.build(items, seed=3)
        assert a.node_count() == b.node_count()
        assert a.height == b.height


class TestInvariants:
    @given(
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=2, max_value=24),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=25)
    def test_build_preserves_invariants(self, n, d, cap, seed):
        rng = np.random.default_rng(seed)
        tree = VPTree.build(make_items(rng, n, d), leaf_capacity=cap, seed=seed)
        tree.validate()
        assert len(tree) == n

    def test_node_bounds_bracket_member_distances(self, rng):
        items = make_items(rng, 400, 3)
        tree = VPTree.build(items, leaf_capacity=8)
        query = Hypersphere(rng.normal(0.0, 10.0, 3), 1.5)

        def walk(node, members):
            lower_min = node.min_dist(query)
            lower_max = node.max_dist_lower_bound(query)
            for _, sphere in members:
                assert min_dist(sphere, query) >= lower_min - 1e-9
                assert max_dist(sphere, query) >= lower_max - 1e-9
            if not node.is_leaf:
                inner, outer = node.children
                inner_members = list(tree._iter_subtree(inner))
                outer_members = list(tree._iter_subtree(outer))
                walk(inner, inner_members)
                walk(outer, outer_members)

        walk(tree.root, items)


class TestQueries:
    def test_range_query_matches_linear_scan(self, rng):
        items = make_items(rng, 300, 2)
        tree = VPTree.build(items, leaf_capacity=8)
        for _ in range(10):
            query = Hypersphere(rng.normal(0.0, 10.0, 2), float(rng.uniform(0, 5)))
            found = {key for key, _ in tree.range_query(query)}
            expected = {key for key, sphere in items if sphere.overlaps(query)}
            assert found == expected

    @pytest.mark.parametrize("strategy", ("hs", "df"))
    def test_two_phase_knn_matches_reference(self, rng, strategy):
        dataset = synthetic_dataset(600, 3, mu=8.0, seed=2)
        tree = VPTree.build(dataset.items())
        items = list(dataset.items())
        for i in (0, 100, 400):
            query = dataset.sphere(i)
            expected = knn_reference(items, query, 8).key_set()
            got = knn_query(
                tree, query, 8, strategy=strategy, algorithm="two-phase"
            )
            assert got.key_set() == expected

    def test_incremental_knn_subset_of_truth(self, rng):
        dataset = synthetic_dataset(600, 3, mu=8.0, seed=2)
        tree = VPTree.build(dataset.items())
        items = list(dataset.items())
        for i in (5, 250):
            query = dataset.sphere(i)
            truth = knn_reference(items, query, 8).key_set()
            got = knn_query(tree, query, 8)
            assert got.key_set() <= truth

    def test_agrees_with_sstree(self, rng):
        from repro.index.sstree import SSTree

        dataset = synthetic_dataset(500, 2, mu=5.0, seed=4)
        vp = VPTree.build(dataset.items())
        ss = SSTree.bulk_load(dataset.items())
        query = dataset.sphere(7)
        vp_answer = knn_query(vp, query, 6, algorithm="two-phase").key_set()
        ss_answer = knn_query(ss, query, 6, algorithm="two-phase").key_set()
        assert vp_answer == ss_answer
