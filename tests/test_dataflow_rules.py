"""Fixture-based tests for the DOM2xx dataflow rules.

Each rule gets at least one seeded violation that must be caught and
one compliant fixture mirroring the real tree's idiom that must stay
clean — including the acceptance-criteria mutation: the shipped
``wal.py`` with its ``append`` fsync deleted must be caught by DOM203.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import lint_paths, rules_by_name

REPO_ROOT = Path(__file__).resolve().parent.parent
REAL_WAL = REPO_ROOT / "src" / "repro" / "stream" / "wal.py"


def lint_tree(
    tmp_path: Path,
    files: "dict[str, str]",
    rules: "list[str]",
    tests: "dict[str, str] | None" = None,
):
    """Write a fixture ``repro`` tree (plus optional ``tests``) and lint it."""
    for relative, source in files.items():
        file = tmp_path / "repro" / relative
        file.parent.mkdir(parents=True, exist_ok=True)
        file.write_text(textwrap.dedent(source), encoding="utf-8")
    if tests is not None:
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir(exist_ok=True)
        for name, source in tests.items():
            (tests_dir / name).write_text(
                textwrap.dedent(source), encoding="utf-8"
            )
    return lint_paths(
        [tmp_path / "repro"],
        rules=rules_by_name(rules),
        root=tmp_path,
        cache=False,
    )


def found(report) -> "list[tuple[str, int]]":
    return [(f.rule, f.line) for f in report.actionable]


class TestAsyncBlockingCall:
    def test_time_sleep_in_async_handler_is_caught(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "serve/h.py": """\
                import time

                async def handler():
                    time.sleep(0.1)
                """
            },
            ["DOM201"],
        )
        assert found(report) == [("async-blocking-call", 4)]

    def test_os_fsync_and_open_are_caught(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "serve/h.py": """\
                import os

                async def persist(fd, path):
                    os.fsync(fd)
                    return open(path).read()
                """
            },
            ["DOM201"],
        )
        assert [rule for rule, _ in found(report)] == [
            "async-blocking-call",
            "async-blocking-call",
        ]

    def test_nested_sync_def_is_executor_territory(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "serve/h.py": """\
                import time

                async def handler(loop, executor, ctx):
                    def work():
                        time.sleep(0.1)
                    await loop.run_in_executor(executor, ctx.run, work)
                """
            },
            ["DOM201"],
        )
        assert found(report) == []

    def test_outside_serve_is_not_checked(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "stream/h.py": """\
                import time

                async def handler():
                    time.sleep(0.1)
                """
            },
            ["DOM201"],
        )
        assert found(report) == []


class TestExecutorContextPropagation:
    def test_bare_submission_is_caught(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "serve/h.py": """\
                async def hop(loop, executor, work):
                    return await loop.run_in_executor(executor, work)
                """
            },
            ["DOM202"],
        )
        assert found(report) == [("executor-context-propagation", 2)]

    def test_copy_context_run_is_compliant(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "serve/h.py": """\
                import contextvars

                async def hop(loop, executor, work):
                    ctx = contextvars.copy_context()
                    return await loop.run_in_executor(executor, ctx.run, work)
                """
            },
            ["DOM202"],
        )
        assert found(report) == []

    def test_executor_submit_is_also_checked(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "serve/h.py": """\
                def kick(executor, work):
                    return executor.submit(work)
                """
            },
            ["DOM202"],
        )
        assert found(report) == [("executor-context-propagation", 2)]


class TestWalFsyncBeforeAck:
    def test_ack_without_fsync_is_caught(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "stream/w.py": """\
                def append(handle, framed):
                    _io_write(handle, framed)
                    return True
                """
            },
            ["DOM203"],
        )
        assert found(report) == [("wal-fsync-before-ack", 2)]

    def test_fsync_before_return_is_compliant(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "stream/w.py": """\
                def append(handle, framed):
                    _io_write(handle, framed)
                    handle.flush()
                    _fsync(handle.fileno())
                    return True
                """
            },
            ["DOM203"],
        )
        assert found(report) == []

    def test_one_branch_skipping_the_fsync_is_caught(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "stream/w.py": """\
                def append(handle, framed, fast):
                    _io_write(handle, framed)
                    if fast:
                        return True
                    _fsync(handle.fileno())
                    return True
                """
            },
            ["DOM203"],
        )
        assert found(report) == [("wal-fsync-before-ack", 2)]

    def test_raise_path_is_not_an_ack(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "stream/w.py": """\
                def append(handle, framed):
                    _io_write(handle, framed)
                    raise OSError("disk gone")
                """
            },
            ["DOM203"],
        )
        assert found(report) == []

    def test_shipped_wal_is_clean(self, tmp_path):
        target = tmp_path / "repro" / "stream" / "wal.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            REAL_WAL.read_text(encoding="utf-8"), encoding="utf-8"
        )
        report = lint_paths(
            [tmp_path / "repro"], rules=rules_by_name(["DOM203"]),
            root=tmp_path, cache=False,
        )
        assert found(report) == []

    def test_mutated_wal_acking_before_fsync_is_caught(self, tmp_path):
        """Acceptance criterion: delete append()'s fsync from the real
        wal.py and DOM203 must flag the append call."""
        source = REAL_WAL.read_text(encoding="utf-8")
        mutation = "\n        _fsync(handle.fileno())"
        assert source.count(mutation) == 1  # unique to WriteAheadLog.append
        mutated = source.replace(mutation, "")
        assert mutated != source
        target = tmp_path / "repro" / "stream" / "wal.py"
        target.parent.mkdir(parents=True)
        target.write_text(mutated, encoding="utf-8")
        report = lint_paths(
            [tmp_path / "repro"], rules=rules_by_name(["DOM203"]),
            root=tmp_path, cache=False,
        )
        assert [f.rule for f in report.actionable] == ["wal-fsync-before-ack"]
        (finding,) = report.actionable
        assert "_io_write" in finding.snippet
        assert "append" in finding.message


class TestUnlockedSharedState:
    VIOLATING = """\
    import contextvars

    class Worker:
        async def handle(self, loop, executor):
            self.count = 0

            def bump():
                self.count = 1

            ctx = contextvars.copy_context()
            await loop.run_in_executor(executor, ctx.run, bump)
    """

    def test_unlocked_cross_context_mutation_is_caught(self, tmp_path):
        report = lint_tree(
            tmp_path, {"serve/w.py": self.VIOLATING}, ["DOM204"]
        )
        assert [f.rule for f in report.actionable] == ["unlocked-shared-state"]
        assert "count" in report.actionable[0].message

    def test_lock_on_both_sides_is_compliant(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "serve/w.py": """\
                import contextvars

                class Worker:
                    async def handle(self, loop, executor):
                        with self._lock:
                            self.count = 0

                        def bump():
                            with self._lock:
                                self.count = 1

                        ctx = contextvars.copy_context()
                        await loop.run_in_executor(executor, ctx.run, bump)
                """
            },
            ["DOM204"],
        )
        assert found(report) == []

    def test_single_context_mutation_is_compliant(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "serve/w.py": """\
                class Worker:
                    async def handle(self):
                        self.count = 0
                        self.count += 1
                """
            },
            ["DOM204"],
        )
        assert found(report) == []

    def test_submitted_method_counts_as_thread_context(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "serve/w.py": """\
                class Worker:
                    async def handle(self, loop, executor, ctx):
                        self.state = "hot"
                        await loop.run_in_executor(
                            executor, ctx.run, self._rebuild
                        )

                    def _rebuild(self):
                        self.state = "cold"
                """
            },
            ["DOM204"],
        )
        assert [f.rule for f in report.actionable] == ["unlocked-shared-state"]
        assert "state" in report.actionable[0].message


class TestFaultSeamCoverage:
    FAULTS = 'SEAMS = ("quartic", "snapshot")\n'
    COVERING_TEST = """\
    from repro.robust import faults

    def test_seams():
        with faults.inject("quartic", mode="nan"):
            pass
        with faults.inject("snapshot", mode="raise"):
            pass
    """

    def test_uncovered_seam_is_caught(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {"robust/faults.py": self.FAULTS},
            ["DOM205"],
            tests={
                "test_chaos.py": """\
                from repro.robust import faults

                def test_quartic():
                    with faults.inject("quartic", mode="nan"):
                        pass
                """
            },
        )
        assert [f.rule for f in report.actionable] == ["fault-seam-coverage"]
        assert "snapshot" in report.actionable[0].message

    def test_fully_covered_seams_are_compliant(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {"robust/faults.py": self.FAULTS},
            ["DOM205"],
            tests={"test_chaos.py": self.COVERING_TEST},
        )
        assert found(report) == []

    def test_strings_in_non_injecting_tests_do_not_count(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {"robust/faults.py": self.FAULTS},
            ["DOM205"],
            tests={
                "test_chaos.py": """\
                from repro.robust import faults

                def test_quartic():
                    with faults.inject("quartic", mode="nan"):
                        pass
                """,
                # Mentions 'snapshot' but never injects: no coverage.
                "test_other.py": 'NAME = "snapshot"\n',
            },
        )
        assert [f.rule for f in report.actionable] == ["fault-seam-coverage"]

    def test_without_a_tests_dir_the_rule_stays_silent(self, tmp_path):
        report = lint_tree(
            tmp_path, {"robust/faults.py": self.FAULTS}, ["DOM205"]
        )
        assert found(report) == []


class TestBudgetChargeCoverage:
    def test_unbudgeted_candidate_loop_is_caught(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "queries/scan.py": """\
                def browse(payload):
                    for key, sphere in payload.entries:
                        yield key, sphere
                """
            },
            ["DOM206"],
        )
        assert found(report) == [("budget-charge-coverage", 2)]

    def test_uncharged_live_budget_is_caught(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "queries/scan.py": """\
                from repro.resilience.budget import current as current_budget

                def scan(index):
                    budget = current_budget()
                    hits = []
                    for key in index.entries:
                        hits.append(key)
                    return hits
                """
            },
            ["DOM206"],
        )
        assert found(report) == [("budget-charge-coverage", 6)]

    def test_charge_inside_body_is_compliant(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "queries/scan.py": """\
                def scan(index, budget):
                    while heap:
                        if budget is not None and budget.charge_node() is not None:
                            return None
                        expand(heap)
                """
            },
            ["DOM206"],
        )
        assert found(report) == []

    def test_paired_budget_none_branches_are_compliant(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "queries/scan.py": """\
                from repro.resilience.budget import current as current_budget

                def scan(index):
                    budget = current_budget()
                    if budget is None:
                        for key in index.entries:
                            keep(key)
                    else:
                        for key in index.entries:
                            if budget.charge_candidate() is not None:
                                break
                            keep(key)
                """
            },
            ["DOM206"],
        )
        assert found(report) == []

    def test_bulk_charge_before_loop_is_compliant(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "queries/scan.py": """\
                from repro.resilience.budget import current as current_budget

                def scan(index, candidates):
                    budget = current_budget()
                    if budget is not None:
                        budget.charge_candidate(len(candidates))
                    for key in candidates:
                        keep(key)
                """
            },
            ["DOM206"],
        )
        assert found(report) == []

    def test_transitive_charge_through_helper_is_compliant(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "queries/scan.py": """\
                def _visit(node, budget):
                    if budget is not None and budget.charge_node() is not None:
                        return
                    for child in node.children:
                        _visit(child, budget)

                def scan(root, budget):
                    if budget is not None and budget.charge_node() is not None:
                        return None
                    for child in root.children:
                        _visit(child, budget)
                """
            },
            ["DOM206"],
        )
        assert found(report) == []

    def test_outside_queries_is_not_checked(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "serve/scan.py": """\
                def browse(payload):
                    for key in payload.entries:
                        yield key
                """
            },
            ["DOM206"],
        )
        assert found(report) == []
