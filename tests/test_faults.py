"""Fault injection: certified decisions degrade gracefully, never lie.

The acceptance bar: under **every** seam x mode combination, a
``VerifiedHyperbola`` verdict is either the correct boolean (the exact
arbiter is out of the seams' reach) or an honest ``UNCERTAIN`` — never
a wrong certified TRUE/FALSE.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import VerifiedHyperbola, obs
from repro.core.hyperbola import HyperbolaCriterion
from repro.exceptions import ReproError
from repro.geometry import distance, quartic
from repro.geometry.hypersphere import Hypersphere
from repro.geometry.transform import FocalFrame
from repro.robust import FLOAT_LADDER, exact_dominates, faults

SEAM_MODE_MATRIX = [
    (seam, mode) for seam in faults.SEAMS for mode in faults.MODES
]


def _triples(rng, count):
    for _ in range(count):
        dimension = int(rng.integers(1, 5))
        yield (
            Hypersphere(rng.normal(size=dimension) * 4.0, rng.uniform(0.0, 1.5)),
            Hypersphere(rng.normal(size=dimension) * 4.0, rng.uniform(0.0, 1.5)),
            Hypersphere(rng.normal(size=dimension) * 4.0, rng.uniform(0.0, 1.5)),
        )


class TestInjectionMechanics:
    def test_unknown_seam_or_mode_rejected(self):
        with pytest.raises(ReproError, match="seam"):
            with faults.inject("nonsense", "nan"):
                pass
        with pytest.raises(ReproError, match="mode"):
            with faults.inject("quartic", "nonsense"):
                pass
        with pytest.raises(ReproError, match="positive"):
            with faults.inject("quartic", "nan", every=0):
                pass

    def test_seams_restored_after_exit(self):
        originals = (
            quartic.solve_quartic_real,
            quartic.solve_quartic_real_closed,
            quartic.solve_quartic_real_batch,
            FocalFrame.reduce,
            distance.dist,
        )
        for seam in faults.SEAMS:
            with faults.inject(seam, "nan"):
                pass
        assert (
            quartic.solve_quartic_real,
            quartic.solve_quartic_real_closed,
            quartic.solve_quartic_real_batch,
            FocalFrame.reduce,
            distance.dist,
        ) == originals

    def test_seams_restored_even_when_body_raises(self):
        original = distance.dist
        with pytest.raises(RuntimeError):
            with faults.inject("distance", "raise"):
                raise RuntimeError("boom")
        assert distance.dist is original

    def test_deterministic_every(self):
        with faults.inject("distance", "nan", every=3) as fault:
            values = [distance.dist([0.0], [1.0]) for _ in range(9)]
        # Fires on calls 1, 4, 7 (counted from the first call).
        assert [i for i, v in enumerate(values) if np.isnan(v)] == [0, 3, 6]
        assert fault.calls == 9
        assert fault.hits == 3

    def test_raise_mode_raises_arithmetic_error(self):
        with faults.inject("distance", "raise"):
            with pytest.raises(ArithmeticError):
                distance.dist([0.0], [1.0])

    def test_perturb_mode_is_tiny(self):
        with faults.inject("distance", "perturb", magnitude=1e-12):
            value = distance.dist([0.0], [3.0])
        assert value == pytest.approx(3.0, rel=1e-11)
        assert value != 3.0

    def test_hits_counted_through_obs(self):
        with obs.enabled_scope(True), obs.scope():
            with faults.inject("distance", "overflow"):
                distance.dist([0.0], [1.0])
            counters = obs.collect()["counters"]
        assert counters.get("faults.distance.overflow", 0) == 1


class TestGracefulDegradation:
    """The acceptance matrix: correct verdict or UNCERTAIN, never wrong."""

    @pytest.mark.parametrize("seam,mode", SEAM_MODE_MATRIX)
    def test_verified_never_certifies_a_wrong_answer(self, seam, mode, rng):
        criterion = VerifiedHyperbola()
        for sa, sb, sq in _triples(rng, 25):
            truth = exact_dominates(sa, sb, sq)
            with faults.inject(seam, mode):
                decision = criterion.decide(sa, sb, sq)
            if decision.certified:
                assert decision.as_bool() == truth, (seam, mode, decision)

    @pytest.mark.parametrize("seam,mode", SEAM_MODE_MATRIX)
    def test_full_ladder_heals_every_fault(self, seam, mode, rng):
        # With the exact arbiter on the ladder the boolean answer is
        # not merely "not wrong" — it is *right*, because the last rung
        # shares no code with the faulted kernels.
        criterion = VerifiedHyperbola()
        for sa, sb, sq in _triples(rng, 15):
            truth = exact_dominates(sa, sb, sq)
            with faults.inject(seam, mode):
                assert criterion.dominates(sa, sb, sq) == truth, (seam, mode)

    @pytest.mark.parametrize("mode", ["nan", "overflow", "raise"])
    def test_truncated_ladder_goes_uncertain_not_wrong(self, mode, rng):
        # Without the exact rung a hard fault on every float stage's
        # quartic solver leaves UNCERTAIN (with a conservative
        # fallback), never a wrong certified verdict.
        criterion = VerifiedHyperbola(ladder=FLOAT_LADDER)
        for sa, sb, sq in _triples(rng, 25):
            truth = exact_dominates(sa, sb, sq)
            with faults.inject("quartic", mode):
                decision = criterion.decide(sa, sb, sq)
            if decision.certified:
                assert decision.as_bool() == truth, (mode, decision)
            elif decision.fallback:
                # A True fallback claims a safe prune: it must be real.
                assert truth

    def test_perturbation_absorbed_by_certification(self, rng):
        # A 1e-12 relative perturbation sits inside every stage's error
        # bound, so verdicts on well-separated triples stay certified
        # and correct without ever reaching the exact stage.
        criterion = VerifiedHyperbola()
        checked = 0
        for sa, sb, sq in _triples(rng, 40):
            clean = criterion.decide(sa, sb, sq)
            if clean.stage not in ("closed", "companion"):
                continue
            with faults.inject("quartic", "perturb", magnitude=1e-12):
                with faults.inject("distance", "perturb", magnitude=1e-12):
                    faulted = criterion.decide(sa, sb, sq)
            assert faulted.verdict is clean.verdict
            checked += 1
        assert checked > 10

    def test_plain_hyperbola_fails_loudly_not_wrongly_on_nan(self):
        # The non-certified kernel's own regression: a nan root raises
        # instead of silently inflating the boundary distance.
        criterion = HyperbolaCriterion()
        sa = Hypersphere([0.0, 0.0], 1.0)
        sb = Hypersphere([10.0, 0.0], 1.0)
        sq = Hypersphere([-2.0, 0.0], 0.5)
        with faults.inject("quartic", "nan"):
            with pytest.raises(ArithmeticError):
                criterion.dominates(sa, sb, sq)

    def test_stage_failures_counted(self, rng):
        criterion = VerifiedHyperbola()
        sa = Hypersphere([0.0, 0.0], 1.0)
        sb = Hypersphere([10.0, 0.0], 1.0)
        sq = Hypersphere([-2.0, 0.0], 0.5)
        with obs.enabled_scope(True), obs.scope():
            with faults.inject("quartic", "raise"):
                criterion.dominates(sa, sb, sq)
            counters = obs.collect()["counters"]
        assert counters.get("verified.stage.closed.failed", 0) == 1
        assert counters.get("verified.stage.companion.failed", 0) == 1
        assert counters.get("faults.quartic.raise", 0) >= 2
