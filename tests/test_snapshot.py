"""Crash-safe index snapshots: round trips, corruption, atomicity.

The contract under test (``repro.index.snapshot``): a loaded snapshot
is bit-for-bit the index that was saved — same keys, same geometry,
same query answers — and *every* corruption of the bytes on disk
surfaces as a typed :class:`~repro.exceptions.SnapshotCorruptionError`,
never as a silently wrong index.  Saves are atomic: an interrupted
write (the ``"snapshot"`` fault seam) leaves any existing snapshot
untouched.
"""

from __future__ import annotations

import os
import tempfile

import hypothesis
import hypothesis.strategies as st
import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.data.synthetic import synthetic_dataset
from repro.data.workload import knn_queries
from repro.exceptions import SnapshotCorruptionError, SnapshotError
from repro.index import snapshot as snap
from repro.index.linear import LinearIndex
from repro.index.mtree import MTree
from repro.index.sstree import SSTree
from repro.index.vptree import VPTree
from repro.queries.knn import knn_query
from repro.robust import faults

KINDS = ("linear", "sstree", "mtree", "vptree")


def _build(kind: str, n: int = 90, dimension: int = 3, seed: int = 0):
    items = list(synthetic_dataset(n, dimension, seed=seed).items())
    if kind == "linear":
        return LinearIndex(items)
    if kind == "sstree":
        return SSTree.bulk_load(items, max_entries=8)
    if kind == "mtree":
        return MTree.build(items, max_entries=8)
    return VPTree.build(items, leaf_capacity=8)


def _knn_answers(index, n: int = 90, dimension: int = 3, seed: int = 0):
    dataset = synthetic_dataset(n, dimension, seed=seed)
    answers = []
    for query in knn_queries(dataset, count=4, seed=seed + 1):
        result = knn_query(index, query, 7)
        answers.append((result.key_set(), result.distk))
    return answers


class TestRoundTrip:
    @pytest.mark.parametrize("kind", KINDS)
    def test_round_trip_preserves_queries(self, kind, tmp_path):
        index = _build(kind)
        path = tmp_path / f"{kind}.snap"
        info = snap.save(index, path)
        assert info["kind"] == kind
        assert info["count"] == len(index)
        assert info["dimension"] == index.dimension
        assert info["bytes"] == os.path.getsize(path)

        checked = snap.verify(path)
        assert checked["kind"] == kind
        assert checked["count"] == len(index)

        loaded = snap.load(path)
        assert type(loaded) is type(index)
        assert len(loaded) == len(index)
        assert loaded.dimension == index.dimension
        assert _knn_answers(loaded) == _knn_answers(index)

    def test_linear_round_trip_is_bit_exact(self, tmp_path):
        # JSON float repr round-trips float64 exactly; awkward values
        # (thirds, tiny magnitudes) must come back to the same bits.
        rng = np.random.default_rng(42)
        items = [
            (i, _sphere(rng.normal(size=3) / 3.0, float(rng.uniform(0, 1) / 3)))
            for i in range(25)
        ]
        index = LinearIndex(items)
        path = tmp_path / "exact.snap"
        snap.save(index, path)
        loaded = snap.load(path)
        np.testing.assert_array_equal(loaded.centers, index.centers)
        np.testing.assert_array_equal(loaded.radii, index.radii)
        assert loaded.keys == index.keys

    def test_key_types_survive(self, tmp_path):
        spheres = [_sphere([float(i), 0.0], 0.1) for i in range(6)]
        keys = [0, -3, 2.5, "name", None, (1, "a")]
        index = LinearIndex(list(zip(keys, spheres)))
        path = tmp_path / "keys.snap"
        snap.save(index, path)
        assert snap.load(path).keys == keys

    @pytest.mark.parametrize("kind", KINDS)
    def test_single_entry_index(self, kind, tmp_path):
        index = _build(kind, n=1)
        path = tmp_path / "one.snap"
        snap.save(index, path)
        loaded = snap.load(path)
        assert len(loaded) == 1

    @hypothesis.given(
        n=st.integers(min_value=1, max_value=40),
        dimension=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=50),
        kind=st.sampled_from(("linear", "sstree", "vptree")),
    )
    @hypothesis.settings(max_examples=25)
    def test_round_trip_property(self, n, dimension, seed, kind):
        index = _build(kind, n=n, dimension=dimension, seed=seed)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "prop.snap")
            snap.save(index, path)
            loaded = snap.load(path)
        assert len(loaded) == len(index)
        dataset = synthetic_dataset(n, dimension, seed=seed)
        k = min(5, n)
        for query in knn_queries(dataset, count=2, seed=seed):
            original = knn_query(index, query, k)
            restored = knn_query(loaded, query, k)
            assert restored.key_set() == original.key_set()
            assert restored.distk == original.distk


class TestCorruptionDetection:
    @pytest.fixture(scope="class")
    def snapshot_bytes(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("snap") / "ref.snap"
        snap.save(_build("sstree"), path)
        return path.read_bytes()

    def _expect_rejected(self, tmp_path, data: bytes, exc=SnapshotCorruptionError):
        path = tmp_path / "bad.snap"
        path.write_bytes(data)
        with pytest.raises(exc):
            snap.verify(path)
        with pytest.raises(exc):
            snap.load(path)

    def test_every_sampled_bit_flip_is_detected(self, snapshot_bytes, tmp_path):
        data = bytearray(snapshot_bytes)
        positions = list(range(0, len(data), max(1, len(data) // 40)))
        positions += [0, len(data) - 1]
        for position in sorted(set(positions)):
            flipped = bytearray(data)
            flipped[position] ^= 0x10
            self._expect_rejected(
                tmp_path, bytes(flipped), (SnapshotCorruptionError, SnapshotError)
            )

    def test_truncation_is_detected(self, snapshot_bytes, tmp_path):
        for cut in (1, 5, len(snapshot_bytes) // 2):
            self._expect_rejected(tmp_path, snapshot_bytes[:-cut])

    def test_trailing_garbage_is_detected(self, snapshot_bytes, tmp_path):
        self._expect_rejected(tmp_path, snapshot_bytes + b"\x00")

    def test_bad_magic_is_detected(self, snapshot_bytes, tmp_path):
        self._expect_rejected(tmp_path, b"NOTASNAP" + snapshot_bytes[8:])

    def test_unknown_version_is_a_typed_error(self, snapshot_bytes, tmp_path):
        data = bytearray(snapshot_bytes)
        data[8] = 99  # little-endian u32 version right after the magic
        self._expect_rejected(tmp_path, bytes(data), SnapshotError)

    def test_empty_file_is_detected(self, tmp_path):
        self._expect_rejected(tmp_path, b"")

    def test_missing_file_is_a_typed_error(self, tmp_path):
        with pytest.raises(SnapshotError):
            snap.load(tmp_path / "never-written.snap")

    def test_count_mismatch_is_detected(self, tmp_path):
        # A header lying about the entry count must not load quietly.
        index = _build("linear", n=10)
        path = tmp_path / "lying.snap"
        snap.save(index, path)
        import json

        from repro.index.snapshot import MAGIC, _U32, _frame, _read_frame

        data = path.read_bytes()
        body = data[len(MAGIC) + _U32.size :]
        import io

        handle = io.BytesIO(body)
        header_payload = _read_frame(handle, len(body), "header")
        header = json.loads(header_payload)
        header["count"] = 7
        rest = body[handle.tell() :]
        rewritten = (
            data[: len(MAGIC) + _U32.size]
            + _frame(json.dumps(header).encode("utf-8"))
            + rest
        )
        path.write_bytes(rewritten)
        with pytest.raises(SnapshotCorruptionError):
            snap.load(path)


class TestCrashSafety:
    def test_interrupted_save_preserves_the_old_snapshot(self, tmp_path):
        path = tmp_path / "stable.snap"
        snap.save(_build("linear", n=12, seed=1), path)
        before = path.read_bytes()
        with faults.inject("snapshot", "raise"):
            with pytest.raises(faults.FaultInjected):
                snap.save(_build("linear", n=30, seed=2), path)
        assert path.read_bytes() == before
        assert len(snap.load(path)) == 12
        # The failed attempt's temp file was cleaned up.
        assert os.listdir(tmp_path) == ["stable.snap"]

    @pytest.mark.parametrize("mode", ("nan", "overflow", "perturb"))
    def test_corrupting_writes_yield_typed_errors_on_read(self, tmp_path, mode):
        path = tmp_path / "flaky.snap"
        with faults.inject("snapshot", mode, every=3):
            snap.save(_build("linear", n=20), path)
        with pytest.raises((SnapshotCorruptionError, SnapshotError)):
            snap.load(path)

    @pytest.mark.parametrize("mode", ("nan", "overflow", "perturb"))
    def test_corrupting_reads_yield_typed_errors(self, tmp_path, mode):
        path = tmp_path / "decay.snap"
        snap.save(_build("sstree", n=40), path)
        with faults.inject("snapshot", mode, every=2):
            with pytest.raises((SnapshotCorruptionError, SnapshotError)):
                snap.load(path)


class TestSnapshotCLI:
    def test_save_verify_load_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "cli.snap")
        assert cli_main(["snapshot", "save", path, "--kind", "vptree", "--n", "50"]) == 0
        assert cli_main(["snapshot", "verify", path]) == 0
        assert cli_main(["snapshot", "load", path]) == 0
        out = capsys.readouterr().out
        assert "saved vptree snapshot" in out
        assert "snapshot OK" in out
        assert "loaded VPTree" in out

    def test_corrupt_snapshot_exits_2(self, tmp_path, capsys):
        path = tmp_path / "cli-bad.snap"
        assert cli_main(["snapshot", "save", str(path), "--n", "30"]) == 0
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x01
        path.write_bytes(bytes(data))
        assert cli_main(["snapshot", "verify", str(path)]) == 2
        assert "snapshot corrupt" in capsys.readouterr().err

    def test_missing_snapshot_exits_1(self, tmp_path, capsys):
        assert cli_main(["snapshot", "load", str(tmp_path / "nope.snap")]) == 1
        assert "snapshot error" in capsys.readouterr().err


def _sphere(center, radius: float):
    from repro.geometry.hypersphere import Hypersphere

    return Hypersphere(center, radius)
