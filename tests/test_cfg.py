"""Tests for the domlint dataflow engine itself.

Golden CFGs for representative function shapes (straight-line,
branching, loops, try/except, early returns), dominance-query unit
tests, the normal-edge reachability query DOM203 is built on, and the
budget dataflow lattice DOM206 is built on.  The rules' end-to-end
behaviour over fixture trees lives in ``test_dataflow_rules.py``.
"""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.cfg import build_cfg, function_cfgs
from repro.analysis.dataflow import BudgetFlow, budget_variables


def cfg_of(source: str):
    tree = ast.parse(textwrap.dedent(source))
    fn = next(
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return build_cfg(fn)


def unit_at(cfg, lineno: int):
    for unit in cfg.units():
        if unit.lineno == lineno:
            return unit
    raise AssertionError(f"no unit at line {lineno}")


class TestGoldenCfgs:
    def test_straight_line_is_one_block(self):
        cfg = cfg_of(
            """\
            def f():
                a = 1
                b = a + 1
                return b
            """
        )
        populated = [b for b in cfg.blocks if b.units]
        assert len(populated) == 1
        assert [u.kind for u in populated[0].units] == [
            "stmt",
            "stmt",
            "return",
        ]
        assert populated[0].normal_succ() == [cfg.exit]

    def test_if_branches_and_join(self):
        cfg = cfg_of(
            """\
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        header = unit_at(cfg, 2).block
        assert header.test is not None
        assert header.true_succ is not None
        assert header.false_succ is not None
        true_lines = [u.lineno for u in header.true_succ.units]
        false_lines = [u.lineno for u in header.false_succ.units]
        assert true_lines == [3]
        assert false_lines == [5]
        # Both arms flow into the join holding the return.
        ret_block = unit_at(cfg, 6).block
        assert ret_block in header.true_succ.normal_succ()
        assert ret_block in header.false_succ.normal_succ()

    def test_while_has_back_edge_and_exit_edge(self):
        cfg = cfg_of(
            """\
            def f(n):
                while n:
                    n -= 1
                return n
            """
        )
        header = unit_at(cfg, 2).block
        body = unit_at(cfg, 3).block
        exit_side = unit_at(cfg, 4).block
        assert body in [b for b, _ in header.succ]
        assert header in [b for b in body.normal_succ()]  # back edge
        assert exit_side in [b for b, _ in header.succ]

    def test_for_header_evaluates_only_the_iterable(self):
        cfg = cfg_of(
            """\
            def f(xs):
                for x in expensive(xs):
                    consume(x)
            """
        )
        header = unit_at(cfg, 2)
        assert header.kind == "iter"
        names = {
            n.id for e in header.exprs for n in ast.walk(e)
            if isinstance(n, ast.Name)
        }
        assert "expensive" in names
        assert "consume" not in names  # body lives in its own block

    def test_try_body_has_exception_edges_to_handler(self):
        cfg = cfg_of(
            """\
            def f():
                try:
                    risky()
                except ValueError:
                    recover()
                return 1
            """
        )
        risky = unit_at(cfg, 3).block
        handler = unit_at(cfg, 5).block
        kinds = {
            kind for succ, kind in risky.succ if succ is handler
        }
        assert "exception" in kinds
        # Both the happy path and the handler reach the return, so the
        # handler arm must not dominate it; the entry always does.
        ret_block = unit_at(cfg, 6).block
        doms = cfg.dominators()[ret_block]
        assert handler not in doms
        assert cfg.entry in doms

    def test_nested_def_is_opaque(self):
        cfg = cfg_of(
            """\
            def f():
                def inner():
                    hidden_call()
                return inner
            """
        )
        called = {
            n.func.id
            for u in cfg.units()
            for e in u.exprs
            for n in ast.walk(e)
            if isinstance(n, ast.Call) and isinstance(n.func, ast.Name)
        }
        assert "hidden_call" not in called

    def test_function_cfgs_yields_nested_functions_separately(self):
        tree = ast.parse(
            textwrap.dedent(
                """\
                def outer():
                    def inner():
                        return 1
                    return inner
                """
            )
        )
        names = [fn.name for fn, _ in function_cfgs(tree)]
        assert sorted(names) == ["inner", "outer"]


class TestDominance:
    def test_sequential_dominance_within_block(self):
        cfg = cfg_of(
            """\
            def f():
                a = 1
                b = 2
                return a + b
            """
        )
        assert cfg.dominates(unit_at(cfg, 2), unit_at(cfg, 3))
        assert not cfg.dominates(unit_at(cfg, 3), unit_at(cfg, 2))

    def test_branch_arm_does_not_dominate_join(self):
        cfg = cfg_of(
            """\
            def f(x):
                if x:
                    a = 1
                return x
            """
        )
        assert cfg.dominates(unit_at(cfg, 2), unit_at(cfg, 4))
        assert not cfg.dominates(unit_at(cfg, 3), unit_at(cfg, 4))

    def test_statement_before_loop_dominates_body(self):
        cfg = cfg_of(
            """\
            def f(xs):
                setup()
                for x in xs:
                    body(x)
                return 1
            """
        )
        assert cfg.dominates(unit_at(cfg, 2), unit_at(cfg, 4))
        assert not cfg.dominates(unit_at(cfg, 4), unit_at(cfg, 5))


class TestReachabilityQuery:
    """The DOM203 primitive: normal-edge exits avoiding a barrier."""

    @staticmethod
    def _avoid_fsync(unit):
        return any(
            isinstance(n, ast.Call)
            and isinstance(n.func, ast.Name)
            and n.func.id == "fsync"
            for n in unit.walk()
        )

    def test_barrier_blocks_every_path(self):
        cfg = cfg_of(
            """\
            def append():
                write()
                fsync()
                return True
            """
        )
        exits = cfg.reachable_exits_avoiding(unit_at(cfg, 2), self._avoid_fsync)
        assert exits == []

    def test_unbarriered_return_is_reachable(self):
        cfg = cfg_of(
            """\
            def append():
                write()
                return True
            """
        )
        exits = cfg.reachable_exits_avoiding(unit_at(cfg, 2), self._avoid_fsync)
        assert len(exits) == 1

    def test_one_arm_missing_the_barrier_is_reachable(self):
        cfg = cfg_of(
            """\
            def append(fast):
                write()
                if fast:
                    return True
                fsync()
                return True
            """
        )
        exits = cfg.reachable_exits_avoiding(unit_at(cfg, 2), self._avoid_fsync)
        assert len(exits) == 1  # only the fast-path return leaks

    def test_raise_paths_do_not_count_as_acks(self):
        cfg = cfg_of(
            """\
            def append():
                write()
                raise OSError("disk gone")
            """
        )
        exits = cfg.reachable_exits_avoiding(unit_at(cfg, 2), self._avoid_fsync)
        assert exits == []

    def test_fall_off_the_end_counts_as_an_ack(self):
        cfg = cfg_of(
            """\
            def append():
                write()
            """
        )
        exits = cfg.reachable_exits_avoiding(unit_at(cfg, 2), self._avoid_fsync)
        assert exits == [None]


class TestBudgetFlow:
    def flow(self, source: str):
        cfg = cfg_of(source)
        return cfg, BudgetFlow(cfg, budget_variables(cfg.fn))

    def test_loop_with_uncharged_budget_is_not_ok(self):
        cfg, flow = self.flow(
            """\
            def scan(entries):
                budget = current_budget()
                for e in entries:
                    use(e)
            """
        )
        assert not flow.ok_at(unit_at(cfg, 3))

    def test_budget_is_none_branch_is_ok(self):
        cfg, flow = self.flow(
            """\
            def scan(entries):
                budget = current_budget()
                if budget is None:
                    for e in entries:
                        use(e)
            """
        )
        assert flow.ok_at(unit_at(cfg, 4))

    def test_bulk_charge_before_loop_is_ok(self):
        cfg, flow = self.flow(
            """\
            def scan(entries):
                budget = current_budget()
                if budget is not None:
                    budget.charge_candidate(len(entries))
                for e in entries:
                    use(e)
            """
        )
        assert flow.ok_at(unit_at(cfg, 5))

    def test_short_circuit_charge_idiom_is_ok_on_fallthrough(self):
        cfg, flow = self.flow(
            """\
            def scan(entries, budget):
                if budget is not None and budget.charge_node() is not None:
                    return None
                for e in entries:
                    use(e)
            """
        )
        assert flow.ok_at(unit_at(cfg, 4))

    def test_budget_parameter_starts_uncharged(self):
        cfg, flow = self.flow(
            """\
            def scan(entries, budget):
                for e in entries:
                    use(e)
            """
        )
        assert not flow.ok_at(unit_at(cfg, 2))

    def test_rebinding_budget_resets_the_obligation(self):
        cfg, flow = self.flow(
            """\
            def scan(entries):
                budget = current_budget()
                if budget is not None:
                    budget.charge_candidate()
                budget = current_budget()
                for e in entries:
                    use(e)
            """
        )
        assert not flow.ok_at(unit_at(cfg, 6))
