"""Hypothesis fuzzing of the certification boundary.

Two properties pin the robustness contract:

1. **Certified means correct** — whenever a float stage certifies a
   verdict, the exact rational arbiter agrees.
2. **No silent flips** — perturbing a certified-TRUE triple by
   ulp-scale deltas can weaken the verdict to UNCERTAIN but can never
   jump it straight to certified-FALSE (and vice versa).  The float
   ladder's certification radius is what guarantees the buffer zone.

Both properties run on ``FLOAT_LADDER``: the exact stage is
point-sharp by design, so it legitimately flips at the true boundary
without an UNCERTAIN band and is validated separately against the
oracle in ``test_robust_exact.py``.

Run with ``HYPOTHESIS_PROFILE=fuzz`` (``make fuzz``) for the long
profile.
"""

from __future__ import annotations

import math

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from conftest import sphere_triples
from repro.core.hyperbola import min_distance_to_boundary
from repro.geometry.hypersphere import Hypersphere
from repro.robust import FLOAT_LADDER, Verdict, decide, exact_dominates

# Perturbation scale, in units of the value's own ulp.
_ULP_STEPS = st.integers(min_value=-8, max_value=8)


def _nudge(value: float, steps: int) -> float:
    """Move *value* by *steps* ulps (exactly, via nextafter iteration)."""
    direction = math.inf if steps > 0 else -math.inf
    for _ in range(abs(steps)):
        value = math.nextafter(value, direction)
    return value


def _perturb(sphere: Hypersphere, steps_list) -> Hypersphere:
    center = [
        _nudge(float(c), steps)
        for c, steps in zip(sphere.center, steps_list[:-1])
    ]
    radius = _nudge(float(sphere.radius), steps_list[-1])
    return Hypersphere(center, max(radius, 0.0))


@given(sphere_triples())
def test_certified_float_verdicts_agree_with_exact(triple):
    sa, sb, sq = triple
    decision = decide(sa, sb, sq, FLOAT_LADDER)
    if decision.certified:
        assert decision.as_bool() == exact_dominates(sa, sb, sq), decision


@given(sphere_triples())
def test_full_ladder_is_never_uncertain(triple):
    sa, sb, sq = triple
    decision = decide(sa, sb, sq)
    assert decision.certified
    assert decision.as_bool() == exact_dominates(sa, sb, sq)


@given(
    sphere_triples(),
    st.lists(_ULP_STEPS, min_size=8, max_size=8),
)
def test_ulp_perturbation_never_flips_certified_verdicts(triple, steps):
    """TRUE and FALSE are separated by an UNCERTAIN buffer zone.

    If both the original and the perturbed triple certify, the verdicts
    must agree: an ulp-scale nudge is far inside every stage's error
    bound, so a genuine flip would have had to pass through UNCERTAIN.
    """
    sa, sb, sq = triple
    before = decide(sa, sb, sq, FLOAT_LADDER)
    dimension = len(sq.center)
    perturbed = _perturb(sq, steps[: dimension + 1] or [0])
    after = decide(sa, sb, perturbed, FLOAT_LADDER)
    if before.certified and after.certified:
        assert before.verdict is after.verdict, (before, after)


@settings(max_examples=30)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_boundary_straddling_never_flips_without_uncertain(seed):
    """March a query radius across the true boundary in ulp steps.

    The sequence of FLOAT_LADDER verdicts along the march must look
    like TRUE... UNCERTAIN... FALSE — monotone, with a non-empty
    UNCERTAIN band separating the two certified regimes.
    """
    rng = np.random.default_rng(seed)
    dimension = int(rng.integers(2, 5))
    sa = Hypersphere(rng.normal(size=dimension) * 4.0, rng.uniform(0.1, 1.0))
    sb = Hypersphere(rng.normal(size=dimension) * 4.0, rng.uniform(0.1, 1.0))
    gap = float(np.linalg.norm(sb.center - sa.center))
    if gap <= sa.radius + sb.radius:
        return  # overlapping: no boundary to straddle
    center_q = rng.normal(size=dimension) * 4.0
    try:
        dmin = min_distance_to_boundary(sa, sb, center_q)
    except Exception:
        return
    if not math.isfinite(dmin) or dmin <= 0.0:
        return

    ranks = {Verdict.TRUE: 0, Verdict.UNCERTAIN: 1, Verdict.FALSE: 2}
    last_rank = None
    radius = dmin * (1.0 - 5e-13)
    while radius < dmin * (1.0 + 5e-13):
        verdict = decide(sa, sb, Hypersphere(center_q, radius), FLOAT_LADDER).verdict
        rank = ranks[verdict]
        if last_rank is not None:
            assert rank >= last_rank, "verdict regressed while radius grew"
            assert rank - last_rank <= 1, "TRUE jumped straight to FALSE"
        last_rank = rank
        radius = _nudge(radius, 64)  # 64-ulp strides across the band
