"""Tests for the standing benchmark observatory (:mod:`repro.bench`).

Runs tiny ad-hoc parameter points through the runner (schema contract:
git SHA, environment fingerprint, exact percentiles, obs counter
deltas), exercises the compare gate with an injected regression, and
drives the ``repro bench`` CLI end to end on the smallest topic.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.compare import compare_documents, compare_runs
from repro.bench.runner import (
    BenchDocument,
    read_document,
    run_topic,
    write_document,
)
from repro.bench.topics import TOPICS, topic_points
from repro.cli import main as cli_main

#: Small enough for the test suite, real enough to exercise every path.
_TINY = {
    "build": [{"n": 60, "d": 3, "radius": "gaussian"}],
    "knn": [
        {
            "n": 60,
            "d": 3,
            "radius": "gaussian",
            "k": 3,
            "queries": 2,
            "strategy": "hs",
            "criterion": "hyperbola",
        }
    ],
    "rknn": [
        {"n": 40, "d": 3, "radius": "gaussian", "queries": 2,
         "criterion": "hyperbola"}
    ],
    "dominating": [
        {"n": 40, "d": 3, "radius": "gaussian", "k": 2, "queries": 2,
         "criterion": "hyperbola"}
    ],
    # Single-process phase only: the supervised phase boots real worker
    # processes and is covered by tests/test_serve_procs_chaos.py.
    "serve": [
        {"n": 40, "d": 3, "radius": "gaussian", "phase": "single",
         "requests": 3, "k": 3}
    ],
}


class TestTopics:
    def test_registry_names_the_required_topics(self):
        assert {
            "build", "knn", "rknn", "dominating", "stream", "serve"
        } <= set(TOPICS)

    def test_quick_points_are_a_subset_of_full(self):
        for topic in TOPICS:
            quick = topic_points(topic, quick=True)
            full = topic_points(topic, quick=False)
            for point in quick:
                assert point in full

    def test_points_are_copies(self):
        first = topic_points("build", quick=True)
        first[0]["n"] = -1
        assert topic_points("build", quick=True)[0]["n"] != -1


class TestRunner:
    @pytest.mark.parametrize("topic", sorted(_TINY))
    def test_document_schema(self, topic):
        document = run_topic(
            topic, _TINY[topic], quick=True, repeats=2, seed=0
        )
        assert document.topic == topic
        assert document.git_sha
        assert document.timestamp
        assert document.env["python"]
        assert document.env["numpy"]
        assert len(document.points) == 1
        point = document.points[0]
        assert point["params"] == _TINY[topic][0]
        latency = point["latency_s"]
        for key in ("median", "p50", "p95", "p99", "mean", "min", "max"):
            assert latency[key] >= 0.0
        assert latency["min"] <= latency["p50"] <= latency["max"]
        assert point["throughput_ops"] > 0.0
        assert isinstance(point["counters"], dict)

    def test_counter_deltas_capture_query_work(self):
        document = run_topic("knn", _TINY["knn"], quick=True, repeats=1)
        counters = document.points[0]["counters"]
        assert counters.get("knn.queries") == 2
        assert counters.get("knn.node_accesses", 0) > 0

    def test_round_trip_through_disk(self, tmp_path):
        document = run_topic("build", _TINY["build"], quick=True, repeats=1)
        path = write_document(document, str(tmp_path))
        assert path.endswith("BENCH_build.json")
        loaded = read_document(path)
        assert loaded.to_dict() == document.to_dict()


def _fake_document(topic: str, p50: float) -> BenchDocument:
    return BenchDocument(
        topic=topic,
        git_sha="deadbeef",
        timestamp="2026-01-01T00:00:00+00:00",
        quick=True,
        repeats=1,
        seed=0,
        env={},
        points=[
            {
                "params": {"n": 100, "d": 3},
                "samples": 3,
                "latency_s": {
                    "median": p50,
                    "p50": p50,
                    "p95": p50 * 1.5,
                    "p99": p50 * 2.0,
                    "mean": p50,
                    "min": p50 * 0.8,
                    "max": p50 * 2.0,
                },
                "throughput_ops": 1.0 / p50,
                "counters": {},
            }
        ],
    )


class TestCompare:
    def test_identical_documents_pass(self):
        baseline = _fake_document("knn", 0.010)
        comparison = compare_documents(baseline, baseline, threshold=0.25)
        assert comparison.ok
        assert comparison.matched == 1

    def test_injected_regression_detected(self):
        baseline = _fake_document("knn", 0.010)
        current = _fake_document("knn", 0.020)  # +100% > +25%
        comparison = compare_documents(baseline, current, threshold=0.25)
        assert not comparison.ok
        regression = comparison.regressions[0]
        assert regression.ratio == pytest.approx(2.0)
        assert "knn" in regression.describe()

    def test_growth_under_threshold_passes(self):
        baseline = _fake_document("knn", 0.010)
        current = _fake_document("knn", 0.0115)  # +15% < +25%
        assert compare_documents(baseline, current, threshold=0.25).ok

    def test_unmatched_points_reported_not_failed(self):
        baseline = _fake_document("knn", 0.010)
        current = _fake_document("knn", 0.010)
        current.points[0]["params"] = {"n": 999, "d": 3}
        comparison = compare_documents(baseline, current, threshold=0.25)
        assert comparison.ok  # unmatched points are not regressions
        assert comparison.matched == 0
        assert comparison.missing_current == [{"n": 100, "d": 3}]
        assert comparison.missing_baseline == [{"n": 999, "d": 3}]

    def test_compare_runs_over_directories(self, tmp_path):
        baseline_dir = tmp_path / "baseline"
        current_dir = tmp_path / "current"
        write_document(_fake_document("knn", 0.010), str(baseline_dir))
        write_document(_fake_document("knn", 0.030), str(current_dir))
        comparisons = compare_runs(
            str(baseline_dir),
            str(current_dir),
            topics=["knn"],
            threshold=0.25,
        )
        assert len(comparisons) == 1
        assert not comparisons[0].ok


class TestBenchCli:
    def test_run_emits_document(self, tmp_path, capsys):
        code = cli_main(
            [
                "bench",
                "--quick",
                "--topics",
                "dominating",
                "--repeats",
                "1",
                "--out-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        path = tmp_path / "BENCH_dominating.json"
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["topic"] == "dominating"
        assert payload["git_sha"]
        assert payload["points"]
        assert "bench dominating:" in capsys.readouterr().out

    def test_compare_exit_codes(self, tmp_path, capsys):
        baseline_dir = tmp_path / "a"
        current_dir = tmp_path / "b"
        write_document(_fake_document("knn", 0.010), str(baseline_dir))
        write_document(_fake_document("knn", 0.010), str(current_dir))
        ok = cli_main(
            [
                "bench",
                "compare",
                "--baseline",
                str(baseline_dir),
                "--current",
                str(current_dir),
                "--topics",
                "knn",
            ]
        )
        assert ok == 0
        write_document(_fake_document("knn", 0.050), str(current_dir))
        failed = cli_main(
            [
                "bench",
                "compare",
                "--baseline",
                str(baseline_dir),
                "--current",
                str(current_dir),
                "--topics",
                "knn",
                "--threshold",
                "0.25",
            ]
        )
        assert failed == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_unknown_topic_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["bench", "--topics", "nope"])
