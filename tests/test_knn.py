"""Integration tests for the kNN query layer (Section 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import synthetic_dataset
from repro.exceptions import QueryError
from repro.geometry.hypersphere import Hypersphere
from repro.index.linear import LinearIndex
from repro.index.sstree import SSTree
from repro.queries.knn import knn_query, knn_reference


@pytest.fixture(scope="module")
def world():
    """A moderately overlapping dataset, its indexes and some queries."""
    dataset = synthetic_dataset(800, 3, mu=8.0, seed=11)
    tree = SSTree.bulk_load(dataset.items(), max_entries=12)
    flat = LinearIndex(dataset.items())
    rng = np.random.default_rng(5)
    queries = [dataset.sphere(int(i)) for i in rng.integers(0, 800, size=6)]
    return dataset, tree, flat, queries


class TestReference:
    def test_contains_the_anchor(self, world):
        _, _, flat, queries = world
        for query in queries:
            result = knn_reference(flat, query, 5)
            maxdists = flat.max_dists(query)
            anchor_key = flat.keys[int(np.argsort(maxdists)[4])]
            assert anchor_key in result.key_set()

    def test_k_equals_dataset_size(self, world):
        dataset, _, flat, queries = world
        result = knn_reference(flat, queries[0], len(dataset))
        assert result.key_set() == set(flat.keys)  # nothing can be dominated

    def test_k1_contains_closest(self, world):
        _, _, flat, queries = world
        for query in queries:
            result = knn_reference(flat, query, 1)
            closest = flat.keys[int(np.argmin(flat.max_dists(query)))]
            assert closest in result.key_set()

    def test_accepts_item_list(self, world):
        dataset, _, flat, queries = world
        from_list = knn_reference(list(dataset.items()), queries[0], 3)
        from_index = knn_reference(flat, queries[0], 3)
        assert from_list.key_set() == from_index.key_set()

    def test_invalid_k(self, world):
        _, _, flat, queries = world
        with pytest.raises(QueryError):
            knn_reference(flat, queries[0], 0)
        with pytest.raises(QueryError):
            knn_reference(flat, queries[0], len(flat) + 1)


class TestTwoPhaseExactness:
    @pytest.mark.parametrize("strategy", ("hs", "df"))
    def test_tree_matches_reference(self, world, strategy):
        _, tree, flat, queries = world
        for query in queries:
            expected = knn_reference(flat, query, 10)
            got = knn_query(
                tree, query, 10, strategy=strategy, algorithm="two-phase"
            )
            assert got.key_set() == expected.key_set()
            assert got.distk == pytest.approx(expected.distk)

    def test_linear_matches_reference(self, world):
        _, _, flat, queries = world
        for query in queries:
            expected = knn_reference(flat, query, 7)
            got = knn_query(flat, query, 7, algorithm="two-phase")
            assert got.key_set() == expected.key_set()

    def test_prunes_subtrees(self, world):
        """Tree traversal must visit fewer nodes than exist for k=1."""
        _, tree, _, queries = world
        result = knn_query(tree, queries[0], 1, algorithm="two-phase")
        assert result.nodes_visited < tree.node_count() * 2  # two passes


class TestIncrementalAlgorithm:
    """The paper's single-pass list maintenance (Section 6)."""

    @pytest.mark.parametrize("strategy", ("hs", "df"))
    def test_subset_of_truth_with_exact_criterion(self, world, strategy):
        _, tree, flat, queries = world
        for query in queries:
            truth = knn_reference(flat, query, 10).key_set()
            got = knn_query(tree, query, 10, strategy=strategy)
            assert got.key_set() <= truth  # precision is always 100%

    def test_finds_the_true_distk(self, world):
        _, tree, flat, queries = world
        for query in queries:
            expected = knn_reference(flat, query, 10)
            for strategy in ("hs", "df"):
                got = knn_query(tree, query, 10, strategy=strategy)
                assert got.distk == pytest.approx(expected.distk)

    def test_unsound_criteria_return_supersets(self, world):
        _, tree, _, queries = world
        for query in queries:
            exact = knn_query(tree, query, 10, criterion="hyperbola").key_set()
            for name in ("minmax", "mbr", "gp"):
                loose = knn_query(tree, query, 10, criterion=name).key_set()
                assert exact <= loose, name

    def test_linear_and_tree_agree(self, world):
        _, tree, flat, queries = world
        for query in queries:
            tree_result = knn_query(tree, query, 5, strategy="hs")
            flat_result = knn_query(flat, query, 5)
            # Both run the same list maintenance; the visit order differs,
            # so the outputs may differ slightly — but both must sit
            # between the exact answer's core and the full truth.
            truth = knn_reference(flat, query, 5).key_set()
            assert tree_result.key_set() <= truth
            assert flat_result.key_set() <= truth

    def test_statistics_populated(self, world):
        _, tree, _, queries = world
        result = knn_query(tree, queries[0], 10)
        assert result.nodes_visited > 0
        assert result.entries_considered > 0
        assert result.dominance_checks >= 0
        assert len(result.keys) == len(result.spheres) == len(result)


class TestValidation:
    def test_invalid_k(self, world):
        _, tree, _, queries = world
        with pytest.raises(QueryError):
            knn_query(tree, queries[0], 0)
        with pytest.raises(QueryError):
            knn_query(tree, queries[0], len(tree) + 1)

    def test_unknown_strategy(self, world):
        _, tree, _, queries = world
        with pytest.raises(QueryError):
            knn_query(tree, queries[0], 3, strategy="bfs")
        with pytest.raises(QueryError):
            knn_query(tree, queries[0], 3, strategy="bfs", algorithm="two-phase")

    def test_unknown_algorithm(self, world):
        _, tree, _, queries = world
        with pytest.raises(QueryError):
            knn_query(tree, queries[0], 3, algorithm="magic")

    def test_criterion_by_name_and_instance(self, world):
        from repro.core import get_criterion

        _, tree, _, queries = world
        by_name = knn_query(tree, queries[0], 5, criterion="minmax")
        by_instance = knn_query(tree, queries[0], 5, criterion=get_criterion("minmax"))
        assert by_name.key_set() == by_instance.key_set()


class TestEdgeCases:
    def test_k_equals_n_returns_everything(self):
        items = [
            (i, Hypersphere([float(i), 0.0], 0.3)) for i in range(20)
        ]
        tree = SSTree.bulk_load(items, max_entries=4)
        query = Hypersphere([0.0, 0.0], 0.5)
        result = knn_query(tree, query, 20)
        assert result.key_set() == set(range(20))

    def test_point_objects_and_point_query(self):
        items = [(i, Hypersphere([float(i), 0.0], 0.0)) for i in range(50)]
        tree = SSTree.bulk_load(items, max_entries=8)
        query = Hypersphere([2.2, 0.0], 0.0)
        result = knn_query(tree, query, 1)
        # With points, dominance is decisive: exactly the nearest remains.
        assert result.key_set() == {2}

    def test_separated_clusters_give_crisp_answers(self):
        rng = np.random.default_rng(0)
        items = []
        for c, offset in enumerate((0.0, 1000.0)):
            for i in range(30):
                center = rng.normal(0.0, 1.0, 2) + offset
                items.append((c * 30 + i, Hypersphere(center, 0.01)))
        tree = SSTree.bulk_load(items)
        query = Hypersphere([0.0, 0.0], 0.01)
        result = knn_query(tree, query, 5)
        assert all(key < 30 for key in result.keys)  # never the far cluster
