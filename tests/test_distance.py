"""Tests for the Equation 1/3/4 distance helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given

from repro.exceptions import DimensionalityMismatchError
from repro.geometry.distance import (
    dist,
    max_dist,
    max_dist_point,
    min_dist,
    min_dist_point,
)
from repro.geometry.hypersphere import Hypersphere

from conftest import hyperspheres, sphere_triples


class TestDist:
    def test_euclidean(self):
        assert dist([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)

    def test_zero(self):
        assert dist([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionalityMismatchError):
            dist([0.0], [0.0, 0.0])


class TestSphereDistances:
    def test_max_dist_formula(self):
        a = Hypersphere([0.0, 0.0], 1.0)
        b = Hypersphere([3.0, 4.0], 2.0)
        assert max_dist(a, b) == pytest.approx(8.0)  # 5 + 1 + 2

    def test_min_dist_formula(self):
        a = Hypersphere([0.0, 0.0], 1.0)
        b = Hypersphere([3.0, 4.0], 2.0)
        assert min_dist(a, b) == pytest.approx(2.0)  # 5 - 1 - 2

    def test_min_dist_overlapping_is_zero(self):
        a = Hypersphere([0.0], 2.0)
        b = Hypersphere([1.0], 2.0)
        assert min_dist(a, b) == 0.0

    def test_point_helpers(self):
        a = Hypersphere([0.0, 0.0], 1.0)
        assert max_dist_point(a, [3.0, 4.0]) == pytest.approx(6.0)
        assert min_dist_point(a, [3.0, 4.0]) == pytest.approx(4.0)
        assert min_dist_point(a, [0.5, 0.0]) == 0.0

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionalityMismatchError):
            max_dist(Hypersphere([0.0], 1.0), Hypersphere([0.0, 0.0], 1.0))

    @given(sphere_triples())
    def test_symmetry(self, triple):
        a, b, _ = triple
        assert max_dist(a, b) == pytest.approx(max_dist(b, a))
        assert min_dist(a, b) == pytest.approx(min_dist(b, a))

    @given(sphere_triples())
    def test_bounds_bracket_sampled_realisations(self, triple):
        """MinDist <= Dist(a, b) <= MaxDist for sampled realisations."""
        a, b, _ = triple
        rng = np.random.default_rng(0)
        points_a = a.sample(rng, 16)
        points_b = b.sample(rng, 16)
        gaps = np.linalg.norm(points_a - points_b, axis=1)
        assert np.all(gaps <= max_dist(a, b) + 1e-9)
        assert np.all(gaps >= min_dist(a, b) - 1e-9)

    @given(hyperspheres())
    def test_self_distances(self, s):
        assert min_dist(s, s) == 0.0
        assert max_dist(s, s) == pytest.approx(2.0 * s.radius)
