"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.experiments == ["table1"]
        assert args.scale == pytest.approx(0.05)
        assert args.seed == 0
        assert args.json is None

    def test_multiple_experiments(self):
        args = build_parser().parse_args(["fig8", "fig9", "--scale", "0.5"])
        assert args.experiments == ["fig8", "fig9"]
        assert args.scale == 0.5


class TestMain:
    def test_runs_one_experiment(self, capsys):
        assert main(["table1", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "hyperbola" in out

    def test_rejects_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert main(["table1", "--scale", "0.01", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert isinstance(payload, list)
        assert payload[0]["experiment"] == "table1"
        assert payload[0]["rows"]

    def test_seed_changes_workload_but_not_flags(self, capsys):
        assert main(["table1", "--scale", "0.01", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        # The empirical flags are invariant to the seed.
        assert out.count("yes") >= 8
