"""The cascade criterion must be decision-identical to Hyperbola."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given

from repro.core import get_criterion
from repro.core.cascade import CascadeCriterion
from repro.geometry.hypersphere import Hypersphere

from conftest import sphere_triples


class TestEquivalence:
    @given(sphere_triples())
    def test_matches_hyperbola_on_uniform_triples(self, triple):
        sa, sb, sq = triple
        assert CascadeCriterion().dominates(sa, sb, sq) == get_criterion(
            "hyperbola"
        ).dominates(sa, sb, sq)

    def test_matches_hyperbola_on_structured_workload(self, rng):
        cascade = CascadeCriterion()
        hyperbola = get_criterion("hyperbola")
        for _ in range(400):
            d = int(rng.integers(1, 6))
            ca = rng.normal(0, 8, d)
            direction = rng.normal(0, 1, d)
            direction /= np.linalg.norm(direction)
            ra = float(abs(rng.normal(0, 1.5)))
            rb = float(abs(rng.normal(0, 1.5)))
            sa = Hypersphere(ca, ra)
            sb = Hypersphere(ca + direction * (ra + rb + rng.uniform(0, 6)), rb)
            sq = Hypersphere(
                ca - direction * rng.uniform(0, 6) + rng.normal(0, 1, d),
                float(abs(rng.normal(0, 2))),
            )
            assert cascade.dominates(sa, sb, sq) == hyperbola.dominates(sa, sb, sq)


class TestFastPaths:
    def test_fast_accept_configuration(self):
        # MaxDist(Sa,Sq) = 4 < MinDist(Sb,Sq) = 96: the accept shortcut.
        sa = Hypersphere([0.0, 0.0], 1.0)
        sb = Hypersphere([100.0, 0.0], 1.0)
        sq = Hypersphere([-1.0, 0.0], 1.0)
        assert CascadeCriterion().dominates(sa, sb, sq)

    def test_fast_reject_configuration(self):
        # Roles reversed: MinDist(Sa,Sq) >= MaxDist(Sb,Sq).
        sa = Hypersphere([100.0, 0.0], 1.0)
        sb = Hypersphere([0.0, 0.0], 1.0)
        sq = Hypersphere([-1.0, 0.0], 1.0)
        assert not CascadeCriterion().dominates(sa, sb, sq)

    def test_registered_flags(self):
        cascade = get_criterion("cascade")
        assert cascade.is_correct and cascade.is_sound

    def test_ambiguous_band_falls_through(self):
        # Neither shortcut fires; the exact decision must still be right.
        sa = Hypersphere([0.0, 0.0], 1.0)
        sb = Hypersphere([10.0, 0.0], 1.0)
        sq = Hypersphere([3.0, 0.0], 0.5)  # near the boundary at x = 4
        assert CascadeCriterion().dominates(sa, sb, sq) == get_criterion(
            "hyperbola"
        ).dominates(sa, sb, sq)
