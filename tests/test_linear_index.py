"""Tests for the flat LinearIndex baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import IndexStructureError
from repro.geometry.distance import max_dist, min_dist
from repro.geometry.hypersphere import Hypersphere
from repro.index.linear import LinearIndex


def make_items(rng, n: int, d: int):
    return [
        (f"k{i}", Hypersphere(rng.normal(0, 5, d), float(abs(rng.normal(0, 1)))))
        for i in range(n)
    ]


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(IndexStructureError):
            LinearIndex([])

    def test_mixed_dimensions_rejected(self):
        with pytest.raises(IndexStructureError):
            LinearIndex(
                [("a", Hypersphere([0.0], 1.0)), ("b", Hypersphere([0.0, 0.0], 1.0))]
            )

    def test_iteration_preserves_order(self, rng):
        items = make_items(rng, 20, 3)
        index = LinearIndex(items)
        assert list(index) == items
        assert len(index) == 20
        assert index.dimension == 3


class TestVectorisedDistances:
    def test_match_scalar_helpers(self, rng):
        items = make_items(rng, 50, 4)
        index = LinearIndex(items)
        query = Hypersphere(rng.normal(0, 5, 4), 1.5)
        maxs = index.max_dists(query)
        mins = index.min_dists(query)
        for i, (_, sphere) in enumerate(items):
            assert maxs[i] == pytest.approx(max_dist(sphere, query))
            assert mins[i] == pytest.approx(min_dist(sphere, query))

    def test_min_dists_clamped_at_zero(self, rng):
        index = LinearIndex([("a", Hypersphere([0.0, 0.0], 2.0))])
        query = Hypersphere([0.5, 0.0], 1.0)
        assert index.min_dists(query)[0] == 0.0
