"""Concurrent snapshot readers see bit-identical results — no races.

The serving model's core assumption: a snapshot-backed index is
*immutable*, so any number of threads, event-loop tasks or server
workers may load and query the same snapshot file with no
synchronisation and no divergence.  These tests drive that assumption
hard: every reader must produce **bit-identical** answers (exact float
equality, not approximate) to every other reader and to a serial
baseline.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.data.synthetic import synthetic_dataset
from repro.data.workload import knn_queries
from repro.index import snapshot as snapshot_io
from repro.index.sstree import SSTree
from repro.queries.knn import knn_query
from repro.serve.app import ServeApp, start_server
from repro.serve.smoke import request
from repro.serve.tenancy import TenantClass, TenantPolicy

THREADS, QUERIES, K = 8, 5, 4


@pytest.fixture(scope="module", params=(3, 19))
def fixture(request, tmp_path_factory):
    seed = request.param
    dataset = synthetic_dataset(100, 3, mu=0.2, seed=seed)
    tree = SSTree.bulk_load(dataset.items(), max_entries=8)
    path = tmp_path_factory.mktemp("concurrency") / f"seed{seed}.snap"
    snapshot_io.save(tree, path)
    queries = knn_queries(dataset, count=QUERIES, seed=seed + 1)
    return str(path), queries


def _fingerprint(result) -> "list[tuple[list, float]]":
    """Exact (keys, distk) signature — any bit of drift breaks equality."""
    return [(sorted(map(str, r.keys)), r.distk) for r in result]


class TestConcurrentSnapshotReaders:
    def test_threads_loading_and_querying_agree_bitwise(self, fixture):
        path, queries = fixture
        barrier = threading.Barrier(THREADS)

        def reader(_: int):
            index = snapshot_io.load(path)
            barrier.wait()  # maximise overlap of the query phase
            return _fingerprint(
                [knn_query(index, query, K) for query in queries]
            )

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            fingerprints = list(pool.map(reader, range(THREADS)))

        serial = _fingerprint(
            [knn_query(snapshot_io.load(path), query, K) for query in queries]
        )
        assert all(fp == serial for fp in fingerprints)

    def test_threads_sharing_one_loaded_index_agree_bitwise(self, fixture):
        path, queries = fixture
        index = snapshot_io.load(path)  # one shared, immutable structure
        barrier = threading.Barrier(THREADS)

        def reader(_: int):
            barrier.wait()
            return _fingerprint(
                [knn_query(index, query, K) for query in queries]
            )

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            fingerprints = list(pool.map(reader, range(THREADS)))
        assert all(fp == fingerprints[0] for fp in fingerprints)

    def test_event_loop_tasks_against_one_server_agree_bitwise(self, fixture):
        path, queries = fixture
        # A roomy tenant class: this test is about determinism under
        # concurrency, not admission (which has its own suites).
        roomy = TenantClass(
            name="roomy", deadline_ms=30_000.0, rate_per_s=10_000.0, burst=1000
        )
        app = ServeApp.from_snapshots(
            {"default": path},
            policy=TenantPolicy({"roomy": roomy}, default="roomy"),
        )
        bodies = [
            {
                "kind": "knn",
                "index": "default",
                "center": [float(c) for c in query.center],
                "radius": float(query.radius),
                "k": K,
            }
            for query in queries
        ]

        async def client(host, port):
            results = []
            for body in bodies:
                status, _, raw = await request(
                    host, port, "POST", "/query", body=body
                )
                assert status == 200
                payload = json.loads(raw)
                results.append(
                    (
                        sorted(map(str, payload["result"]["keys"])),
                        payload["result"]["distk"],
                    )
                )
            return results

        async def go():
            server = await start_server(app)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                return await asyncio.gather(
                    *(client(host, port) for _ in range(THREADS))
                )
            finally:
                server.close()
                await server.wait_closed()

        try:
            per_client = asyncio.run(go())
        finally:
            app.close()
        assert all(results == per_client[0] for results in per_client)
        # And the served answers match a direct in-process query bitwise.
        direct = [
            (
                sorted(map(str, r.keys)),
                r.distk,
            )
            for r in (
                knn_query(snapshot_io.load(path), query, K)
                for query in queries
            )
        ]
        assert per_client[0] == direct
