"""Crash matrix: SIGKILL at every WAL/compaction seam under load.

A child process opens a streaming index, applies a mutation workload,
and prints one ``ACK <seq>`` line after each durably acknowledged
mutation.  A hook installed at one I/O seam kills the process with
SIGKILL at a chosen call — before a write, mid-frame, around an fsync,
or on either side of the compaction rename.  The parent then recovers
the directory and asserts the durability contract:

- **no acked mutation is lost** — every printed seq is replayed;
- **no mutation is half-applied** — the recovered history is a
  contiguous seq prefix ``1..m`` (a torn tail frame is dropped whole);
- **at most the in-flight record is in limbo** — ``m`` exceeds the
  acked count by at most one (a record can be durable before its ack
  escapes the process, never more than one);
- **recovered answers are oracle answers** — queries against the
  reopened index equal a linear-scan over a dict replay of exactly the
  recovered records.

This file is the body of ``make stream-chaos`` and the CI job of the
same name.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.data.synthetic import synthetic_dataset
from repro.geometry.hypersphere import Hypersphere
from repro.queries.knn import knn_reference
from repro.queries.rknn import rnn_candidates
from repro.stream.engine import StreamingIndex

N, DIMENSION, K = 40, 3, 5
MUTATIONS = 12
#: The child checkpoints after this many mutations in compact scenarios.
COMPACT_AT = 8

_CHILD_SCRIPT = r"""
import importlib, json, os, signal, sys

from repro.geometry.hypersphere import Hypersphere
from repro.stream import wal as wal_mod
from repro.stream.engine import StreamingIndex

directory, spec = sys.argv[1], sys.argv[2]
seam, nth, mode = (spec.split(":") + ["0", ""])[:3]
nth = int(nth)
state = {"calls": 0}


def die():
    sys.stdout.flush()
    os.kill(os.getpid(), signal.SIGKILL)


if seam == "append":
    real_write = wal_mod._io_write

    def hooked_write(handle, data):
        state["calls"] += 1
        if state["calls"] == nth:
            if mode == "mid":
                handle.write(data[: len(data) // 2])
                handle.flush()
            die()
        real_write(handle, data)

    wal_mod._io_write = hooked_write
elif seam == "fsync":
    real_fsync = wal_mod._fsync

    def hooked_fsync(fileno):
        state["calls"] += 1
        if state["calls"] == nth:
            if mode == "post":
                real_fsync(fileno)
            die()  # "skip" mode: the lying disk crashed before syncing
        real_fsync(fileno)

    wal_mod._fsync = hooked_fsync
elif seam == "rename":
    compact_mod = importlib.import_module("repro.stream.compact")
    real_rename = compact_mod._rename

    def hooked_rename(source, destination):
        if mode == "post":
            real_rename(source, destination)
        die()

    compact_mod._rename = hooked_rename

mutations = json.loads(sys.stdin.read())
compact_at = int(sys.argv[3])
stream = StreamingIndex.open(directory)
for step, (op, key, center, radius) in enumerate(mutations):
    if op == "insert":
        seq = stream.insert(key, Hypersphere(center, radius))
    else:
        seq = stream.delete(key)
    print(f"ACK {seq}", flush=True)
    if seam == "rename" and step + 1 == compact_at:
        stream.checkpoint()
print("DONE", flush=True)
"""

SCENARIOS = (
    # (seam:nth:mode, description)
    "append:2:pre",    # killed before any byte of record 2
    "append:2:mid",    # record 2 torn mid-frame
    "append:7:pre",
    "append:7:mid",
    "fsync:3:post",    # durable but never acked
    "fsync:3:skip",    # lying disk: sync skipped, then the crash
    "rename:0:pre",    # compaction dies before its commit point
    "rename:0:post",   # compaction commits, dies before WAL truncate
)


@pytest.fixture(scope="module")
def base_entries():
    dataset = synthetic_dataset(N, DIMENSION, mu=0.15, seed=7)
    return list(dataset.items())


@pytest.fixture(scope="module")
def workload():
    """Deterministic insert/delete mix, JSON-shaped for the child."""
    fresh = synthetic_dataset(MUTATIONS, DIMENSION, mu=0.15, seed=77)
    spheres = [sphere for _, sphere in fresh.items()]
    mix = []
    for i, sphere in enumerate(spheres):
        if i % 3 == 2:
            mix.append(["delete", i // 3, None, None])
        else:
            mix.append([
                "insert",
                1000 + i,
                [float(c) for c in sphere.center],
                float(sphere.radius),
            ])
    return mix


def run_child(directory: str, spec: str, workload) -> "list[int]":
    """Run the child until its seam kills it; return the acked seqs."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, directory, spec, str(COMPACT_AT)],
        input=json.dumps(workload),
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == -9, (
        f"child survived spec {spec}: rc={proc.returncode}, "
        f"stderr={proc.stderr[-500:]}"
    )
    acked = [
        int(line.split()[1])
        for line in proc.stdout.splitlines()
        if line.startswith("ACK ")
    ]
    assert "DONE" not in proc.stdout
    return acked


def oracle_replay(base_entries, records):
    """The dumb ground truth: dict replay of the recovered WAL records."""
    table = dict(base_entries)
    for record in records:
        if record.op == "insert":
            table[record.key] = record.sphere()
        else:
            table.pop(record.key, None)
    return list(table.items())


@pytest.mark.parametrize("spec", SCENARIOS)
def test_kill_at_seam_recovers_exactly(tmp_path, base_entries, workload, spec):
    directory = str(tmp_path / "stream")
    StreamingIndex.create(directory, base_entries, kind="sstree").close()

    acked = run_child(directory, spec, workload)
    seam, _, mode = (spec.split(":") + [""])[:3]

    with StreamingIndex.open(directory) as recovered:
        replayed = [m.seq for m in recovered.wal.replayed]

        # Contiguous prefix: nothing half-applied, nothing reordered.
        assert replayed == list(range(1, len(replayed) + 1))

        if seam == "rename":
            # The compaction may or may not have committed (and with it
            # truncated nothing — the kill lands before the truncate),
            # but either way every acked mutation must have survived,
            # and replay over old or new snapshot converges.
            applied = workload[: len(acked)]
        else:
            # No acked mutation lost; at most the in-flight record
            # (durable before its ack escaped) may additionally appear.
            assert set(range(1, len(acked) + 1)) <= set(replayed)
            assert len(replayed) - len(acked) <= 1
            if mode in ("pre", "mid"):
                # Killed before the record could become durable: the
                # recovered history is *exactly* the acked history.
                assert len(replayed) == len(acked)
            applied = workload[: len(replayed)]

        # The effective dataset equals the dumb oracle over exactly the
        # surviving history.
        oracle = oracle_replay(base_entries, _as_records(applied))
        assert dict(recovered.effective_entries()) == dict(oracle)

        # And so do the query answers, bit for bit on the key sets.
        probe = synthetic_dataset(3, DIMENSION, mu=0.15, seed=99)
        for _, query in probe.items():
            got = recovered.query_knn(query, K, algorithm="two-phase")
            want = knn_reference(oracle, query, K)
            assert got.key_set() == want.key_set()
            assert set(recovered.query_rknn(query)) == set(
                rnn_candidates(oracle, query)
            )

        # The recovered index keeps working: appends continue past the
        # durable history with strictly increasing seqs.
        next_seq = recovered.insert(
            "post-crash", Hypersphere([100.0, 100.0, 100.0], 0.5)
        )
        assert next_seq >= len(replayed) + 1


def _as_records(applied):
    """Workload rows -> objects with the .op/.key/.sphere interface."""
    from repro.stream.wal import Mutation

    records = []
    for seq, (op, key, center, radius) in enumerate(applied, start=1):
        if op == "insert":
            records.append(
                Mutation.insert(key, Hypersphere(center, radius), seq=seq)
            )
        else:
            records.append(Mutation.delete(key, seq=seq))
    return records


def test_clean_run_reaches_done(tmp_path, base_entries, workload):
    """Sanity: without a kill spec the child completes and exits 0."""
    directory = str(tmp_path / "stream")
    StreamingIndex.create(directory, base_entries, kind="sstree").close()
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, directory, "none:0:",
         str(COMPACT_AT)],
        input=json.dumps(workload),
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr[-500:]
    assert "DONE" in proc.stdout
    with StreamingIndex.open(directory) as recovered:
        assert recovered.last_seq == len(workload)
        oracle = oracle_replay(base_entries, _as_records(workload))
        assert dict(recovered.effective_entries()) == dict(oracle)
