"""Unit and property tests for Hyperrectangle and its distances."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
import hypothesis.strategies as st

from repro.exceptions import DimensionalityMismatchError, GeometryError
from repro.geometry.hyperrectangle import Hyperrectangle
from repro.geometry.hypersphere import Hypersphere

from conftest import finite_coordinates, hyperspheres


class TestConstruction:
    def test_basic(self):
        r = Hyperrectangle([0.0, 0.0], [2.0, 4.0])
        assert r.dimension == 2
        assert np.array_equal(r.center, [1.0, 2.0])
        assert np.array_equal(r.extents, [2.0, 4.0])

    def test_inverted_bounds_rejected(self):
        with pytest.raises(GeometryError):
            Hyperrectangle([1.0], [0.0])

    def test_mismatched_bounds_rejected(self):
        with pytest.raises(DimensionalityMismatchError):
            Hyperrectangle([0.0], [1.0, 2.0])

    def test_nan_rejected(self):
        with pytest.raises(GeometryError):
            Hyperrectangle([float("nan")], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            Hyperrectangle([], [])

    def test_bounds_read_only(self):
        r = Hyperrectangle([0.0], [1.0])
        with pytest.raises(ValueError):
            r.lo[0] = 5.0

    def test_bounding_sphere(self):
        r = Hyperrectangle.bounding(Hypersphere([1.0, 2.0], 3.0))
        assert np.array_equal(r.lo, [-2.0, -1.0])
        assert np.array_equal(r.hi, [4.0, 5.0])

    def test_from_points(self):
        r = Hyperrectangle.from_points(np.array([[0.0, 5.0], [2.0, 1.0]]))
        assert np.array_equal(r.lo, [0.0, 1.0])
        assert np.array_equal(r.hi, [2.0, 5.0])

    def test_from_points_empty_rejected(self):
        with pytest.raises(GeometryError):
            Hyperrectangle.from_points(np.empty((0, 2)))


class TestPredicates:
    def test_contains(self):
        r = Hyperrectangle([0.0, 0.0], [1.0, 1.0])
        assert r.contains([0.5, 1.0])
        assert not r.contains([1.5, 0.5])

    def test_intersects(self):
        a = Hyperrectangle([0.0], [1.0])
        assert a.intersects(Hyperrectangle([1.0], [2.0]))  # touching counts
        assert not a.intersects(Hyperrectangle([1.1], [2.0]))

    def test_intersects_dimension_mismatch(self):
        with pytest.raises(DimensionalityMismatchError):
            Hyperrectangle([0.0], [1.0]).intersects(
                Hyperrectangle([0.0, 0.0], [1.0, 1.0])
            )


class TestDistances:
    def test_min_dist_inside_is_zero(self):
        r = Hyperrectangle([0.0, 0.0], [2.0, 2.0])
        assert r.min_dist_point([1.0, 1.0]) == 0.0

    def test_min_dist_outside(self):
        r = Hyperrectangle([0.0, 0.0], [1.0, 1.0])
        assert r.min_dist_point([4.0, 5.0]) == pytest.approx(5.0)

    def test_max_dist_is_farthest_corner(self):
        r = Hyperrectangle([0.0, 0.0], [1.0, 1.0])
        assert r.max_dist_point([0.0, 0.0]) == pytest.approx(np.sqrt(2.0))

    def test_one_dimensional_pieces_sum_to_squared_distances(self):
        r = Hyperrectangle([0.0, -1.0, 2.0], [1.0, 1.0, 3.0])
        q = np.array([2.0, 0.0, 0.0])
        min_sq = sum(r.min_sq_dist_1d(i, q[i]) for i in range(3))
        max_sq = sum(r.max_sq_dist_1d(i, q[i]) for i in range(3))
        assert min_sq == pytest.approx(r.min_dist_point(q) ** 2)
        assert max_sq == pytest.approx(r.max_dist_point(q) ** 2)

    @given(hyperspheres(dimension=3), st.lists(finite_coordinates, min_size=3, max_size=3))
    def test_sphere_bound_brackets_box_distances(self, sphere, q):
        """MBR distances bracket the sphere distances from any point."""
        box = Hyperrectangle.bounding(sphere)
        gap = float(np.linalg.norm(np.asarray(q) - sphere.center))
        sphere_min = max(gap - sphere.radius, 0.0)
        sphere_max = gap + sphere.radius
        assert box.min_dist_point(q) <= sphere_min + 1e-9
        assert box.max_dist_point(q) >= sphere_max - 1e-9


class TestDunder:
    def test_equality_and_hash(self):
        a = Hyperrectangle([0.0], [1.0])
        b = Hyperrectangle([0.0], [1.0])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Hyperrectangle([0.0], [2.0])
        assert a != 42

    def test_repr(self):
        assert "lo=" in repr(Hyperrectangle([0.0], [1.0]))
