"""In-depth tests of the Hyperbola algorithm (Section 4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given
import hypothesis.strategies as st

from repro.core.hyperbola import (
    HyperbolaCriterion,
    boundary_margin,
    min_distance_to_boundary,
)
from repro.core.oracle import min_margin
from repro.exceptions import CriterionError
from repro.geometry.hypersphere import Hypersphere
from repro.geometry.transform import FocalFrame

from conftest import dimensions, finite_coordinates, small_radii

HYPERBOLA = HyperbolaCriterion()


def brute_force_boundary_distance(
    sa: Hypersphere, sb: Hypersphere, point: np.ndarray, samples: int = 200_000
) -> float:
    """Distance from *point* to the margin-zero level set, by 2-D scan.

    Works in the reduced plane: scans hyperbola branch points
    parametrised as x = -A*cosh(u), y = B*sinh(u) (the branch bounding
    Ra) plus the mirrored branch, and returns the closest.
    """
    frame = FocalFrame(sa.center, sb.center)
    t, rho = frame.reduce(point)
    rab = sa.radius + sb.radius
    alpha = frame.alpha
    if rab == 0.0:
        return abs(t)
    a = rab / 2.0
    b = np.sqrt(alpha * alpha - a * a)
    u = np.linspace(-30.0, 30.0, samples)
    # cosh overflows beyond ~700; clip the parameter range accordingly.
    x = a * np.cosh(np.clip(u, -30, 30))
    y = b * np.sinh(np.clip(u, -30, 30))
    best = np.inf
    for branch_x in (x, -x):
        dist = np.hypot(t - branch_x, rho - y)
        best = min(best, float(dist.min()))
    return best


class TestBoundaryDistance:
    def test_simple_2d_case(self):
        sa = Hypersphere([0.0, 0.0], 1.0)
        sb = Hypersphere([10.0, 0.0], 1.0)
        point = np.array([-3.0, 0.0])
        exact = min_distance_to_boundary(sa, sb, point)
        brute = brute_force_boundary_distance(sa, sb, point)
        assert exact == pytest.approx(brute, rel=1e-3)

    def test_point_on_boundary_gives_zero(self):
        sa = Hypersphere([0.0, 0.0], 1.0)
        sb = Hypersphere([10.0, 0.0], 1.0)
        # Find a boundary point: on the axis, margin(x) = 0 at x where
        # (10 - x) - (-x ... on-axis between: (10-x) - x = 2 -> x = 4.
        point = np.array([4.0, 0.0])
        assert boundary_margin(sa, sb, point) == pytest.approx(0.0)
        assert min_distance_to_boundary(sa, sb, point) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_bisector_degenerate_case(self):
        sa = Hypersphere([0.0, 0.0], 0.0)
        sb = Hypersphere([4.0, 0.0], 0.0)
        assert min_distance_to_boundary(sa, sb, [1.0, 7.0]) == pytest.approx(1.0)

    def test_overlapping_pair_rejected(self):
        sa = Hypersphere([0.0], 2.0)
        sb = Hypersphere([1.0], 2.0)
        with pytest.raises(CriterionError):
            min_distance_to_boundary(sa, sb, [0.0])

    @given(
        st.floats(min_value=-20, max_value=20),
        st.floats(min_value=-20, max_value=20),
        st.floats(min_value=0, max_value=3),
        st.floats(min_value=0, max_value=3),
        st.floats(min_value=0.2, max_value=15),
    )
    def test_matches_brute_force_2d(self, px, py, ra, rb, extra_gap):
        sa = Hypersphere([0.0, 0.0], ra)
        sb = Hypersphere([ra + rb + extra_gap, 0.0], rb)
        point = np.array([px, py])
        exact = min_distance_to_boundary(sa, sb, point)
        brute = brute_force_boundary_distance(sa, sb, point)
        # The brute scan is itself approximate: relative slack needed.
        assert exact == pytest.approx(brute, rel=2e-2, abs=2e-2)

    def test_query_on_focal_axis_ring_case(self):
        # cq exactly on the focal axis: the generic Lagrange branch
        # degenerates and the answer comes from the critical ring.
        sa = Hypersphere([0.0, 0.0], 0.2)
        sb = Hypersphere([2.05, 0.0], 0.2)  # barely separated
        point = np.array([-3.0, 0.0])
        exact = min_distance_to_boundary(sa, sb, point)
        brute = brute_force_boundary_distance(sa, sb, point)
        assert exact == pytest.approx(brute, rel=1e-3, abs=1e-3)

    def test_lemma5_regression(self):
        """The configuration that exposed the off-quadric candidate bug."""
        r, delta = 1.0, 0.05
        diag = np.array([1.0, 1.0]) / np.sqrt(2.0)
        sa = Hypersphere(diag * 4.0 * r, r)
        sb = Hypersphere(diag * (6.0 * r + delta), r)
        sq = Hypersphere([0.0, 0.0], r)
        assert HYPERBOLA.dominates(sa, sb, sq)


class TestDecisionLogic:
    def test_query_center_outside_region_fails_fast(self):
        sa = Hypersphere([0.0, 0.0], 1.0)
        sb = Hypersphere([10.0, 0.0], 1.0)
        sq = Hypersphere([20.0, 0.0], 0.1)  # on Sb's side
        assert not HYPERBOLA.dominates(sa, sb, sq)

    def test_point_query_inside_region(self):
        sa = Hypersphere([0.0, 0.0], 1.0)
        sb = Hypersphere([10.0, 0.0], 1.0)
        assert HYPERBOLA.dominates(sa, sb, Hypersphere([-1.0, 0.0], 0.0))

    def test_query_sphere_crossing_boundary(self):
        sa = Hypersphere([0.0, 0.0], 1.0)
        sb = Hypersphere([10.0, 0.0], 1.0)
        # Boundary on the axis at x = 4; a query at 3 with radius 2 crosses.
        assert not HYPERBOLA.dominates(sa, sb, Hypersphere([3.0, 0.0], 2.0))
        # Radius 0.5 stays clear.
        assert HYPERBOLA.dominates(sa, sb, Hypersphere([3.0, 0.0], 0.5))

    def test_touching_spheres_never_dominate(self):
        sa = Hypersphere([0.0], 1.0)
        sb = Hypersphere([2.0], 1.0)
        assert not HYPERBOLA.dominates(sa, sb, Hypersphere([-5.0], 0.1))

    def test_equal_centers_never_dominate(self):
        sa = Hypersphere([1.0, 1.0], 0.5)
        sb = Hypersphere([1.0, 1.0], 0.7)
        assert not HYPERBOLA.dominates(sa, sb, Hypersphere([9.0, 9.0], 0.1))

    def test_high_dimensional_decision(self):
        d = 64
        sa = Hypersphere(np.zeros(d), 1.0)
        center_b = np.zeros(d)
        center_b[0] = 50.0
        sb = Hypersphere(center_b, 1.0)
        center_q = np.zeros(d)
        center_q[0] = -5.0
        center_q[1] = 2.0
        assert HYPERBOLA.dominates(sa, sb, Hypersphere(center_q, 1.0))

    @given(
        dimensions,
        st.floats(min_value=0.0, max_value=4.0),
        st.floats(min_value=0.0, max_value=4.0),
        st.floats(min_value=0.05, max_value=10.0),
        st.floats(min_value=0.0, max_value=6.0),
    )
    def test_agrees_with_mdd_condition(self, d, ra, rb, gap_extra, rq):
        """Hyperbola's verdict must equal the raw MDD condition (Eq. 7)."""
        rng = np.random.default_rng(42)
        ca = rng.normal(0.0, 5.0, d)
        direction = rng.normal(0.0, 1.0, d)
        direction /= np.linalg.norm(direction)
        cb = ca + direction * (ra + rb + gap_extra)
        cq = ca + rng.normal(0.0, 4.0, d)
        sa, sb = Hypersphere(ca, ra), Hypersphere(cb, rb)
        sq = Hypersphere(cq, rq)
        margin = min_margin(sa, sb, sq, resolution=2048) - (ra + rb)
        assume(abs(margin) > 1e-6)  # boundary ties are float-ambiguous
        assert HYPERBOLA.dominates(sa, sb, sq) == (margin > 0.0)


class TestDominatesWithMargin:
    def test_reduces_to_plain_dominance_at_zero(self):
        from repro.core.hyperbola import dominates_with_margin

        sa = Hypersphere([0.0, 0.0], 1.0)
        sb = Hypersphere([10.0, 0.0], 1.0)
        sq = Hypersphere([3.0, 0.0], 0.5)
        assert dominates_with_margin(sa, sb, sq, 0.0) == HYPERBOLA.dominates(
            sa, sb, sq
        )

    def test_margin_is_monotone(self):
        from repro.core.hyperbola import dominates_with_margin

        sa = Hypersphere([0.0, 0.0], 1.0)
        sb = Hypersphere([10.0, 0.0], 1.0)
        sq = Hypersphere([-1.0, 0.0], 0.5)
        verdicts = [
            dominates_with_margin(sa, sb, sq, eps)
            for eps in (0.0, 1.0, 3.0, 5.0, 7.0, 9.5)
        ]
        # Once lost with growing epsilon, never regained.
        for earlier, later in zip(verdicts, verdicts[1:]):
            assert not (later and not earlier)
        assert verdicts[0] and not verdicts[-1]

    def test_margin_threshold_matches_oracle(self):
        from repro.core.hyperbola import dominates_with_margin

        sa = Hypersphere([0.0, 0.0], 1.0)
        sb = Hypersphere([10.0, 0.0], 1.0)
        sq = Hypersphere([-1.0, 0.0], 0.5)
        slack = min_margin(sa, sb, sq) - (sa.radius + sb.radius)
        assert dominates_with_margin(sa, sb, sq, slack * 0.95)
        assert not dominates_with_margin(sa, sb, sq, slack * 1.05)

    def test_negative_epsilon_rejected(self):
        from repro.core.hyperbola import dominates_with_margin
        from repro.exceptions import CriterionError

        with pytest.raises(CriterionError):
            dominates_with_margin(
                Hypersphere([0.0], 1.0),
                Hypersphere([9.0], 1.0),
                Hypersphere([1.0], 0.1),
                -0.5,
            )


class TestDefinitionEquivalence:
    """Definition 1 <=> the MDD condition, checked by sampling."""

    def test_positive_verdicts_hold_on_samples(self, rng):
        checked = 0
        while checked < 20:
            d = int(rng.integers(1, 5))
            ca = rng.normal(0, 6, d)
            direction = rng.normal(0, 1, d)
            direction /= np.linalg.norm(direction)
            ra, rb = abs(rng.normal(0, 1)), abs(rng.normal(0, 1))
            sa = Hypersphere(ca, float(ra))
            sb = Hypersphere(ca + direction * (ra + rb + rng.uniform(1, 6)), float(rb))
            sq = Hypersphere(ca - direction * rng.uniform(0, 4), float(rng.uniform(0, 1.5)))
            if not HYPERBOLA.dominates(sa, sb, sq):
                continue
            checked += 1
            qs = sq.sample(rng, 15)
            as_ = sa.sample(rng, 15)
            bs = sb.sample(rng, 15)
            for q in qs:
                for a in as_:
                    for b in bs:
                        assert np.linalg.norm(a - q) < np.linalg.norm(b - q)

    def test_negative_verdicts_have_witnesses(self, rng):
        from repro.core.oracle import find_witness, min_margin as mm

        checked = 0
        while checked < 20:
            d = int(rng.integers(1, 5))
            mk = lambda: Hypersphere(rng.normal(0, 5, d), float(abs(rng.normal(0, 2))))
            sa, sb, sq = mk(), mk(), mk()
            if HYPERBOLA.dominates(sa, sb, sq):
                continue
            margin = mm(sa, sb, sq) - (sa.radius + sb.radius)
            if margin > -1e-4:  # too close to the boundary to certify
                continue
            checked += 1
            witness = find_witness(sa, sb, sq)
            assert witness is not None
            q, a, b = witness
            assert np.linalg.norm(a - q) >= np.linalg.norm(b - q)
