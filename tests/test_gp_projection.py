"""Properties of the GP criterion's 2-D projection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
import hypothesis.strategies as st

from repro.core.gp import project_to_plane

from conftest import finite_coordinates


@st.composite
def point_pairs(draw):
    d = draw(st.integers(min_value=2, max_value=8))
    coords = st.lists(finite_coordinates, min_size=d, max_size=d)
    return (
        np.array(draw(coords)),
        np.array(draw(coords)),
        np.array(draw(coords)),
    )


class TestProjection:
    def test_anchor_maps_to_origin(self):
        anchor = np.array([3.0, -1.0, 2.0])
        assert np.allclose(project_to_plane(anchor, anchor), [0.0, 0.0])

    def test_output_is_2d(self):
        out = project_to_plane(np.arange(7.0), np.zeros(7))
        assert out.shape == (2,)
        assert out[0] >= 0.0  # the collapsed block is a norm

    @given(point_pairs())
    def test_contraction(self, points):
        """Projected distances never exceed the original distances."""
        anchor, x, y = points
        px = project_to_plane(x, anchor)
        py = project_to_plane(y, anchor)
        original = float(np.linalg.norm(x - y))
        projected = float(np.linalg.norm(px - py))
        assert projected <= original + 1e-9 * (1.0 + original)

    @given(point_pairs())
    def test_anchor_distances_exact(self, points):
        """Distances *to the anchor* are preserved exactly.

        This is the property that makes the anchored adaptation correct:
        the dominator side of the comparison is never shrunk.
        """
        anchor, x, _ = points
        projected = project_to_plane(x, anchor)
        assert float(np.linalg.norm(projected)) == pytest.approx(
            float(np.linalg.norm(x - anchor)), abs=1e-9 * (1 + np.abs(x).max())
        )
