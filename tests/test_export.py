"""Tests for :mod:`repro.obs.export` (Prometheus + JSONL exporters).

Covers the Prometheus text rendering against a golden document (family
structure, ``# TYPE`` lines, name sanitisation, counter/summary
conventions), the JSONL query-event log round trip, and the contextvar
activation path that makes real queries emit events.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro import obs
from repro.data.synthetic import synthetic_dataset
from repro.geometry.hypersphere import Hypersphere
from repro.index.linear import LinearIndex
from repro.index.sstree import SSTree
from repro.obs import export
from repro.queries.dominating import top_k_dominating
from repro.queries.knn import knn_query
from repro.queries.rknn import rnn_candidates


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestSanitize:
    def test_dots_become_underscores(self):
        assert (
            export.sanitize_metric_name("hyperbola.fast_path.overlap")
            == "hyperbola_fast_path_overlap"
        )

    def test_leading_digit_prefixed(self):
        assert export.sanitize_metric_name("2fast") == "_2fast"

    def test_colons_survive(self):
        assert export.sanitize_metric_name("a:b.c") == "a:b_c"


class TestPrometheusRendering:
    def test_golden_document(self):
        # A small snapshot rendered end to end; this is the wire format
        # contract, so the assertion is exact.
        snapshot = {
            "counters": {"cascade.calls": 7, "hyperbola.calls": 3},
            "timers": {"stats.knn": {"count": 2, "total": 0.5}},
            "histograms": {
                "knn.answer_size": {
                    "count": 4,
                    "sum": 10.0,
                    "mean": 2.5,
                    "std": 0.5,
                    "min": 2.0,
                    "max": 3.0,
                    "p50": 2.5,
                    "p95": 3.0,
                    "p99": 3.0,
                }
            },
        }
        expected = "\n".join(
            [
                "# HELP repro_cascade_calls_total obs counter cascade.calls",
                "# TYPE repro_cascade_calls_total counter",
                "repro_cascade_calls_total 7.0",
                "# HELP repro_hyperbola_calls_total obs counter hyperbola.calls",
                "# TYPE repro_hyperbola_calls_total counter",
                "repro_hyperbola_calls_total 3.0",
                "# HELP repro_stats_knn_seconds obs timer stats.knn",
                "# TYPE repro_stats_knn_seconds summary",
                "repro_stats_knn_seconds_count 2.0",
                "repro_stats_knn_seconds_sum 0.5",
                "# HELP repro_knn_answer_size obs histogram knn.answer_size",
                "# TYPE repro_knn_answer_size summary",
                'repro_knn_answer_size{quantile="0.5"} 2.5',
                'repro_knn_answer_size{quantile="0.95"} 3.0',
                'repro_knn_answer_size{quantile="0.99"} 3.0',
                "repro_knn_answer_size_count 4.0",
                "repro_knn_answer_size_sum 10.0",
                "",
            ]
        )
        assert export.to_prometheus(snapshot) == expected

    def test_every_family_has_type_and_help_lines(self):
        with obs.enabled_scope(), obs.scope():
            obs.incr("a.b")
            obs.observe("c.d", 1.0)
            with obs.trace("e.f"):
                pass
            text = export.to_prometheus(obs.collect())
        families = [
            line.split()[2]
            for line in text.splitlines()
            if line.startswith("# TYPE")
        ]
        assert len(families) == 3
        for family in families:
            assert f"# HELP {family} " in text
            assert f"# TYPE {family} " in text

    def test_sample_lines_use_sanitized_names_only(self):
        with obs.enabled_scope(), obs.scope():
            obs.incr("weird.name-with.dash")
            text = export.to_prometheus(obs.collect())
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            metric = line.split("{")[0].split()[0]
            assert all(
                ch.isalnum() or ch in "_:" for ch in metric
            ), f"invalid metric name in line {line!r}"

    def test_empty_snapshot_renders_empty(self):
        assert export.to_prometheus({}) == ""

    def test_custom_prefix(self):
        text = export.to_prometheus(
            {"counters": {"x": 1}}, prefix="hypersphere"
        )
        assert "hypersphere_x_total 1.0" in text


class TestQueryEventLog:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with export.QueryEventLog.open(path) as log:
            log.emit(
                export.QueryEvent(
                    kind="knn",
                    duration_s=0.25,
                    answer_size=7,
                    tier="conservative",
                    complete=False,
                    stats={"nodes_visited": 12},
                )
            )
            log.emit(export.QueryEvent(kind="rknn", duration_s=0.1, answer_size=0))
            assert log.events_written == 2
        events = export.read_events(path)
        assert len(events) == 2
        assert events[0].kind == "knn"
        assert events[0].tier == "conservative"
        assert not events[0].complete
        assert events[0].stats == {"nodes_visited": 12}
        assert events[1].kind == "rknn"
        assert events[1].complete

    def test_each_line_is_standalone_json(self):
        sink = io.StringIO()
        log = export.QueryEventLog(sink)
        log.emit(export.QueryEvent(kind="knn", duration_s=0.1, answer_size=1))
        log.emit(export.QueryEvent(kind="knn", duration_s=0.2, answer_size=2))
        lines = sink.getvalue().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            payload = json.loads(line)
            assert payload["kind"] == "knn"

    def test_real_queries_emit_one_event_each(self):
        dataset = synthetic_dataset(120, 3, seed=3)
        tree = SSTree.bulk_load(dataset.items())
        flat = LinearIndex(dataset.items())
        query = Hypersphere(np.asarray(dataset.centers[0]), 0.5)
        sink = io.StringIO()
        log = export.QueryEventLog(sink)
        with export.scope(log):
            knn_query(tree, query, 5)
            rnn_candidates(flat, query)
            top_k_dominating(flat, query, 3)
        events = [
            export.QueryEvent.from_dict(json.loads(line))
            for line in sink.getvalue().strip().splitlines()
        ]
        assert [event.kind for event in events] == [
            "knn",
            "rknn",
            "dominating",
        ]
        knn_event = events[0]
        assert knn_event.duration_s > 0.0
        assert knn_event.answer_size >= 5
        assert knn_event.stats.get("nodes_visited", 0) > 0

    def test_no_events_outside_scope(self):
        dataset = synthetic_dataset(60, 3, seed=3)
        tree = SSTree.bulk_load(dataset.items())
        query = Hypersphere(np.asarray(dataset.centers[0]), 0.5)
        sink = io.StringIO()
        log = export.QueryEventLog(sink)
        knn_query(tree, query, 3)
        assert sink.getvalue() == ""
        with export.scope(log):
            with export.scope(None):  # explicit shield
                knn_query(tree, query, 3)
        assert sink.getvalue() == ""

    def test_event_count_metric_recorded_when_enabled(self):
        sink = io.StringIO()
        log = export.QueryEventLog(sink)
        with obs.enabled_scope(), obs.scope():
            log.emit(export.QueryEvent(kind="knn", duration_s=0.1, answer_size=1))
            counters = obs.collect()["counters"]
        assert counters["export.events_logged"] == 1
