"""The vectorised kernels must agree with the scalar criteria exactly."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
import hypothesis.strategies as st

from repro.core import get_criterion
from repro.core.batch import (
    batch_evaluate,
    batch_gp,
    batch_hyperbola,
    batch_mbr,
    batch_minmax,
    batch_trigonometric,
)
from repro.geometry.hypersphere import Hypersphere

ALL_KERNELS = ("hyperbola", "minmax", "mbr", "gp", "trigonometric")


def random_workload(rng, n: int, d: int):
    """A mixed workload: raw random, aligned, overlapping, degenerate."""
    ca = rng.normal(0.0, 10.0, (n, d))
    cb = rng.normal(0.0, 10.0, (n, d))
    cq = rng.normal(0.0, 10.0, (n, d))
    ra = np.abs(rng.normal(0.0, 2.0, n))
    rb = np.abs(rng.normal(0.0, 2.0, n))
    rq = np.abs(rng.normal(0.0, 2.0, n))
    # Mix in structured sub-populations that stress specific paths:
    quarter = n // 4
    if quarter:
        # aligned triples (dominance plausible)
        direction = rng.normal(0.0, 1.0, (quarter, d))
        direction /= np.linalg.norm(direction, axis=1, keepdims=True)
        cb[:quarter] = ca[:quarter] + direction * (
            ra[:quarter] + rb[:quarter] + rng.uniform(0.5, 8.0, quarter)
        )[:, None]
        cq[:quarter] = ca[:quarter] - direction * rng.uniform(
            0.0, 6.0, (quarter, 1)
        )
        # exact duplicates of Sa as Sb (overlap path)
        cb[quarter : quarter + quarter // 2] = ca[quarter : quarter + quarter // 2]
        # point spheres (rab == 0 bisector path)
        ra[2 * quarter : 3 * quarter] = 0.0
        rb[2 * quarter : 3 * quarter] = 0.0
        rq[3 * quarter :] = 0.0  # point queries
    return ca, cb, cq, ra, rb, rq


def scalar_answers(name: str, arrays) -> np.ndarray:
    criterion = get_criterion(name)
    ca, cb, cq, ra, rb, rq = arrays
    out = np.zeros(ca.shape[0], dtype=bool)
    for i in range(ca.shape[0]):
        out[i] = criterion.dominates(
            Hypersphere(ca[i], float(ra[i])),
            Hypersphere(cb[i], float(rb[i])),
            Hypersphere(cq[i], float(rq[i])),
        )
    return out


class TestScalarAgreement:
    @pytest.mark.parametrize("name", ALL_KERNELS)
    @pytest.mark.parametrize("d", (1, 2, 3, 6))
    def test_mixed_workload(self, name, d, rng):
        arrays = random_workload(rng, 200, d)
        vectorised = batch_evaluate(name, *arrays)
        scalar = scalar_answers(name, arrays)
        disagree = np.flatnonzero(vectorised != scalar)
        assert disagree.size == 0, f"rows {disagree[:5]} disagree for {name}"

    @given(st.integers(min_value=0, max_value=10_000), st.integers(1, 5))
    def test_hyperbola_single_rows(self, seed, d):
        rng = np.random.default_rng(seed)
        arrays = random_workload(rng, 8, d)
        assert np.array_equal(
            batch_hyperbola(*arrays), scalar_answers("hyperbola", arrays)
        )


class TestInterface:
    def test_unknown_kernel(self):
        arrays = random_workload(np.random.default_rng(0), 4, 2)
        with pytest.raises(ValueError, match="no batch kernel"):
            batch_evaluate("bogus", *arrays)

    def test_shape_validation(self):
        ca = np.zeros((4, 2))
        with pytest.raises(ValueError):
            batch_minmax(ca, ca, np.zeros((5, 2)), *(np.zeros(4),) * 3)
        with pytest.raises(ValueError):
            batch_minmax(ca, ca, ca, np.zeros(3), np.zeros(4), np.zeros(4))

    def test_empty_workload(self):
        empty = (np.zeros((0, 3)),) * 3 + (np.zeros(0),) * 3
        for kernel in (batch_minmax, batch_mbr, batch_gp, batch_trigonometric,
                       batch_hyperbola):
            assert kernel(*empty).shape == (0,)

    def test_result_dtype_is_bool(self, rng):
        arrays = random_workload(rng, 16, 3)
        for name in ALL_KERNELS:
            assert batch_evaluate(name, *arrays).dtype == np.bool_


class TestKnownAnswers:
    def test_clear_dominance_row(self):
        ca = np.array([[0.0, 0.0]])
        cb = np.array([[100.0, 0.0]])
        cq = np.array([[-2.0, 0.0]])
        radii = (np.array([1.0]), np.array([1.0]), np.array([0.5]))
        for name in ALL_KERNELS:
            assert batch_evaluate(name, ca, cb, cq, *radii)[0], name

    def test_overlap_row_false_for_correct_kernels(self):
        ca = np.array([[0.0, 0.0]])
        cb = np.array([[0.5, 0.0]])
        cq = np.array([[-2.0, 0.0]])
        radii = (np.array([1.0]), np.array([1.0]), np.array([0.5]))
        for name in ("hyperbola", "minmax", "mbr", "gp"):
            assert not batch_evaluate(name, ca, cb, cq, *radii)[0], name


class TestNaNPaddingContainment:
    """Regression: batch quartic nan padding must never leak into verdicts.

    ``solve_quartic_real_batch`` pads rows having fewer than four real
    roots with ``nan``.  The batch Hyperbola kernel masks those slots to
    ``inf`` distance before the row minimum; if the mask ever regressed,
    nan would propagate through the min (or silently lose every
    comparison) and corrupt the verdict.  These tests pin the seal.
    """

    def test_padded_rows_match_scalar(self, rng):
        ca, cb, cq, ra, rb, rq = random_workload(rng, 64, 3)
        rq = np.maximum(rq, 1e-3)  # force the quartic path on live rows
        arrays = (ca, cb, cq, ra, rb, rq)
        result = batch_hyperbola(*arrays)
        criterion = get_criterion("hyperbola")
        for i in range(ca.shape[0]):
            expected = criterion.dominates(
                Hypersphere(ca[i], ra[i]),
                Hypersphere(cb[i], rb[i]),
                Hypersphere(cq[i], rq[i]),
            )
            assert bool(result[i]) == expected, f"row {i}"

    def test_batch_solver_pads_with_nan(self):
        from repro.geometry.quartic import solve_quartic_real_batch

        # x^4 + 1 = 0 has no real roots: the row must be all-nan ...
        no_real = np.array([[1.0, 0.0, 0.0, 0.0, 1.0]])
        assert np.all(np.isnan(solve_quartic_real_batch(no_real)))
        # ... and (x^2 - 1)(x^2 + 1) = x^4 - 1 has exactly two.
        two_real = np.array([[1.0, 0.0, 0.0, 0.0, -1.0]])
        roots = solve_quartic_real_batch(two_real)[0]
        assert np.isnan(roots).sum() == 2
        np.testing.assert_allclose(np.sort(roots[:2]), [-1.0, 1.0], atol=1e-9)

    def test_all_nan_root_rows_still_yield_finite_verdicts(self):
        # A configuration whose quartic row has < 4 real roots: verdict
        # must still be a clean boolean decided by the closed-form
        # candidates (vertices / ring), not nan-contaminated.
        ca = np.array([[0.0, 0.0]])
        cb = np.array([[10.0, 0.0]])
        cq = np.array([[-2.0, 0.0]])
        ra = np.array([1.0])
        rb = np.array([1.0])
        rq = np.array([0.5])
        result = batch_hyperbola(ca, cb, cq, ra, rb, rq)
        assert result.dtype == np.bool_
        assert bool(result[0]) is True
