"""Tests for the :mod:`repro.obs` instrumentation layer.

Covers the metric primitives (counter/timer/histogram correctness),
contextvar scoping (nested scopes, thread isolation, nested trace
spans), reset semantics, snapshot diffing, and the contract that every
mutator is a no-op while instrumentation is disabled.
"""

from __future__ import annotations

import contextvars
import json
import threading

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_obs():
    """Leave the global flag off and the root registry empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestCounters:
    def test_increment(self):
        with obs.enabled_scope(), obs.scope():
            obs.incr("a")
            obs.incr("a")
            obs.incr("b", 5)
            counters = obs.collect()["counters"]
        assert counters == {"a": 2, "b": 5}

    def test_collect_is_json_serialisable(self):
        with obs.enabled_scope(), obs.scope():
            obs.incr("a")
            obs.observe("h", 1.5)
            with obs.trace("t"):
                pass
            snapshot = obs.collect()
        json.dumps(snapshot)  # must not raise


class TestHistograms:
    def test_streaming_moments(self):
        with obs.enabled_scope(), obs.scope():
            for value in (2.0, 4.0, 6.0):
                obs.observe("h", value)
            snap = obs.collect()["histograms"]["h"]
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(12.0)
        assert snap["mean"] == pytest.approx(4.0)
        assert snap["std"] == pytest.approx((8.0 / 3.0) ** 0.5)
        assert snap["min"] == 2.0
        assert snap["max"] == 6.0

    def test_quantiles_exact_under_five_samples(self):
        # Below the P-squared marker count the estimator is exact
        # (nearest-rank over the sorted buffer).
        with obs.enabled_scope(), obs.scope():
            for value in (10.0, 30.0, 20.0):
                obs.observe("h", value)
            snap = obs.collect()["histograms"]["h"]
        assert snap["p50"] == 20.0
        assert snap["p95"] == 30.0
        assert snap["p99"] == 30.0

    def test_quantiles_empty_histogram_reports_zero(self):
        with obs.enabled_scope(), obs.scope():
            obs.observe("h", 1.0)
            obs.reset()
            obs.observe("h2", 0.0)
            snap = obs.collect()["histograms"]["h2"]
        assert snap["p50"] == 0.0
        assert snap["p95"] == 0.0
        assert snap["p99"] == 0.0

    def test_p2_estimates_track_uniform_stream(self):
        # The P-squared markers converge on the true quantiles of a
        # large shuffled uniform stream within a few percent.
        import numpy as np

        rng = np.random.default_rng(42)
        values = rng.uniform(0.0, 100.0, size=5000)
        with obs.enabled_scope(), obs.scope():
            for value in values:
                obs.observe("h", float(value))
            snap = obs.collect()["histograms"]["h"]
        assert snap["p50"] == pytest.approx(50.0, abs=5.0)
        assert snap["p95"] == pytest.approx(95.0, abs=5.0)
        assert snap["p99"] == pytest.approx(99.0, abs=5.0)
        assert snap["p50"] <= snap["p95"] <= snap["p99"]


class TestTimers:
    def test_add_time_accumulates(self):
        with obs.enabled_scope(), obs.scope():
            obs.add_time("t", 0.25)
            obs.add_time("t", 0.75)
            snap = obs.collect()["timers"]["t"]
        assert snap["count"] == 2
        assert snap["total"] == pytest.approx(1.0)
        assert snap["mean"] == pytest.approx(0.5)
        assert snap["min"] == pytest.approx(0.25)
        assert snap["max"] == pytest.approx(0.75)

    def test_trace_records_elapsed(self):
        with obs.enabled_scope(), obs.scope():
            with obs.trace("span"):
                pass
            snap = obs.collect()["timers"]["span"]
        assert snap["count"] == 1
        assert snap["total"] >= 0.0

    def test_nested_spans_join_with_dots(self):
        with obs.enabled_scope(), obs.scope():
            with obs.trace("outer"):
                assert obs.current_span_path() == "outer"
                with obs.trace("inner"):
                    assert obs.current_span_path() == "outer.inner"
            assert obs.current_span_path() == ""
            timers = obs.collect()["timers"]
        assert set(timers) == {"outer", "outer.inner"}

    def test_trace_as_decorator(self):
        @obs.trace("work")
        def work(x):
            return x + 1

        with obs.enabled_scope(), obs.scope():
            assert work(1) == 2
            assert work(2) == 3
            timers = obs.collect()["timers"]
        assert timers["work"]["count"] == 2


class TestScoping:
    def test_scope_isolates_from_enclosing_registry(self):
        with obs.enabled_scope(), obs.scope() as outer:
            obs.incr("outer_only")
            with obs.scope() as inner:
                obs.incr("inner_only")
                assert obs.collect()["counters"] == {"inner_only": 1}
            assert obs.collect()["counters"] == {"outer_only": 1}
        assert inner.counters["inner_only"].value == 1
        assert outer.counters["outer_only"].value == 1

    def test_copied_context_does_not_leak_into_caller(self):
        def in_other_context():
            with obs.scope():
                obs.incr("elsewhere")
                return obs.collect()["counters"]

        with obs.enabled_scope(), obs.scope():
            obs.incr("here")
            other = contextvars.copy_context().run(in_other_context)
            assert obs.collect()["counters"] == {"here": 1}
        assert other == {"elsewhere": 1}

    def test_thread_records_to_its_own_context(self):
        # A fresh thread starts with a fresh contextvar state, so it
        # falls back to the root registry, not the caller's scope.
        def worker():
            obs.incr("from_thread")

        with obs.enabled_scope(), obs.scope():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert "from_thread" not in obs.collect()["counters"]
        assert obs.collect()["counters"]["from_thread"] == 1

    def test_nested_trace_spans_are_context_local(self):
        def in_other_context():
            with obs.trace("other"):
                return obs.current_span_path()

        with obs.enabled_scope(), obs.scope():
            with obs.trace("outer"):
                path = contextvars.copy_context().run(in_other_context)
                assert obs.current_span_path() == "outer"
        assert path == "outer.other"


class TestReset:
    def test_reset_clears_every_instrument(self):
        with obs.enabled_scope(), obs.scope():
            obs.incr("c")
            obs.observe("h", 1.0)
            obs.add_time("t", 0.1)
            obs.reset()
            snapshot = obs.collect()
        assert snapshot == {"counters": {}, "timers": {}, "histograms": {}}

    def test_names_recreate_after_reset(self):
        with obs.enabled_scope(), obs.scope():
            obs.incr("c", 10)
            obs.reset()
            obs.incr("c")
            assert obs.collect()["counters"]["c"] == 1


class TestDisabled:
    def test_mutators_are_noops(self):
        assert not obs.enabled()
        with obs.scope():
            obs.incr("c")
            obs.observe("h", 1.0)
            obs.add_time("t", 0.1)
            with obs.trace("span"):
                assert obs.current_span_path() == ""
            snapshot = obs.collect()
        assert snapshot == {"counters": {}, "timers": {}, "histograms": {}}

    def test_enabled_scope_restores_previous_state(self):
        assert not obs.enabled()
        with obs.enabled_scope():
            assert obs.enabled()
            with obs.enabled_scope(False):
                assert not obs.enabled()
            assert obs.enabled()
        assert not obs.enabled()

    def test_module_flag_matches_accessor(self):
        assert obs.ENABLED is obs.enabled()
        obs.enable()
        try:
            assert obs.ENABLED is True
        finally:
            obs.disable()
        assert obs.ENABLED is False


class TestDiff:
    def test_counters_subtract_and_zero_deltas_drop(self):
        with obs.enabled_scope(), obs.scope():
            obs.incr("unchanged", 3)
            obs.incr("grows", 1)
            before = obs.collect()
            obs.incr("grows", 4)
            obs.incr("fresh", 2)
            delta = obs.diff(before, obs.collect())
        assert delta["counters"] == {"grows": 4, "fresh": 2}

    def test_timers_diff_count_and_total(self):
        with obs.enabled_scope(), obs.scope():
            obs.add_time("t", 1.0)
            before = obs.collect()
            obs.add_time("t", 0.5)
            delta = obs.diff(before, obs.collect())
        assert delta["timers"]["t"]["count"] == 1
        assert delta["timers"]["t"]["total"] == pytest.approx(0.5)

    def test_histograms_diff_count_and_sum(self):
        with obs.enabled_scope(), obs.scope():
            obs.observe("h", 2.0)
            before = obs.collect()
            obs.observe("h", 3.0)
            obs.observe("h", 5.0)
            delta = obs.diff(before, obs.collect())
        assert delta["histograms"]["h"]["count"] == 2
        assert delta["histograms"]["h"]["sum"] == pytest.approx(8.0)
