"""Serve building blocks: tenancy, admission, breaker, retry, validation.

Clock-dependent behaviour is tested against a *fake* monotonic clock
patched onto :data:`repro.resilience.budget._monotonic` — the same
attribute the ``"clock"`` fault seam corrupts — so token refills and
breaker recovery windows are exact, not sleep-based.
"""

from __future__ import annotations

import asyncio
import math
import random

import pytest

from repro import obs
from repro.exceptions import ServeError, ValidationError
from repro.obs import names
from repro.queries.validation import validate_deadline_ms
from repro.resilience import budget as budget_mod
from repro.resilience.partial import (
    GuaranteeTier,
    PartialResult,
    ResilienceReport,
    to_jsonable,
)
from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.retry import RetryPolicy, is_transient, run_with_retry
from repro.serve.tenancy import TenantClass, TenantPolicy, default_classes


class FakeClock:
    """A controllable stand-in for the guarded monotonic clock."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start
        self.broken = False

    def __call__(self) -> float:
        if self.broken:
            raise ArithmeticError("injected clock failure")
        return self.now


@pytest.fixture
def clock(monkeypatch):
    fake = FakeClock()
    monkeypatch.setattr(budget_mod, "_monotonic", fake)
    return fake


# ----------------------------------------------------------------------
# --deadline-ms validation (the CLI/serve boundary)
# ----------------------------------------------------------------------
class TestDeadlineValidation:
    @pytest.mark.parametrize(
        "value", [-1, 0, 0.0, -0.5, math.nan, math.inf, -math.inf]
    )
    def test_rejects_nonpositive_and_nonfinite(self, value):
        with pytest.raises(ValidationError):
            validate_deadline_ms(value)

    @pytest.mark.parametrize("value", [True, False, None, [150], "soon", ""])
    def test_rejects_non_numbers(self, value):
        with pytest.raises(ValidationError):
            validate_deadline_ms(value)

    @pytest.mark.parametrize(
        "value, expected", [(150, 150.0), (0.25, 0.25), ("99.5", 99.5)]
    )
    def test_accepts_positive_numbers_and_numeric_strings(
        self, value, expected
    ):
        assert validate_deadline_ms(value) == expected

    def test_cli_rejects_bad_deadline_with_exit_2(self, capsys):
        from repro.cli import main

        for bad in ("-5", "0", "nan", "soon"):
            with pytest.raises(SystemExit) as excinfo:
                main(["fig9", "--deadline-ms", bad])
            assert excinfo.value.code == 2
        assert "deadline-ms" in capsys.readouterr().err

    def test_serve_cli_rejects_bad_deadline_with_exit_2(self, capsys):
        from repro.serve.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--deadline-ms", "-150"])
        assert excinfo.value.code == 2
        assert "deadline-ms" in capsys.readouterr().err


# ----------------------------------------------------------------------
# PartialResult / ResilienceReport JSON round-trip (the 206 body)
# ----------------------------------------------------------------------
class TestPartialResultSerialization:
    def _degraded_report(self) -> ResilienceReport:
        report = ResilienceReport()
        report.mark_incomplete("deadline")
        report.absorbed_faults = 2
        report.uncertain = 1
        report.mark_conservative("index bound corrupted")
        return report

    def test_report_roundtrip_preserves_every_field(self):
        report = self._degraded_report()
        restored = ResilienceReport.from_dict(report.to_dict())
        assert restored.to_dict() == report.to_dict()
        assert restored.degraded and restored.exhausted == "deadline"
        assert restored.tier is GuaranteeTier.CONSERVATIVE

    def test_roundtrip_recomputes_degraded_flag(self):
        payload = ResilienceReport().to_dict()
        payload["degraded"] = True  # a lie: no degradation markers
        assert ResilienceReport.from_dict(payload).degraded is False

    def test_partial_result_to_dict_is_json_clean(self):
        import json

        result = PartialResult(["a", "b"], self._degraded_report())
        payload = result.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["value"] == ["a", "b"]
        assert payload["report"]["absorbed_faults"] == 2
        assert payload["report"]["degraded"] is True

    def test_to_jsonable_handles_knn_results_and_numpy(self):
        import json

        import numpy as np

        from repro.data.synthetic import synthetic_dataset
        from repro.data.workload import knn_queries
        from repro.index.sstree import SSTree
        from repro.queries.knn import knn_query

        dataset = synthetic_dataset(60, 3, seed=3)
        tree = SSTree.bulk_load(dataset.items())
        query = knn_queries(dataset, count=1, seed=3)[0]
        result = knn_query(tree, query, 4)
        payload = to_jsonable(result)
        assert json.loads(json.dumps(payload))  # JSON-clean
        assert payload["keys"] == [to_jsonable(key) for key in result.keys]
        assert isinstance(payload["distk"], float)
        assert to_jsonable(np.float64(2.5)) == 2.5
        assert to_jsonable({1: (2, 3)}) == {"1": [2, 3]}


# ----------------------------------------------------------------------
# Tenancy
# ----------------------------------------------------------------------
class TestTenancy:
    def test_tenant_class_validates_its_policy(self):
        with pytest.raises(ValidationError):
            TenantClass(name="x", deadline_ms=-1.0)
        with pytest.raises(ServeError):
            TenantClass(name="", deadline_ms=100.0)
        with pytest.raises(ServeError):
            TenantClass(name="x", deadline_ms=100.0, rate_per_s=0.0)
        with pytest.raises(ServeError):
            TenantClass(name="x", deadline_ms=100.0, burst=0)

    def test_mint_budget_is_fresh_per_call(self):
        cls = TenantClass(name="x", deadline_ms=100.0, max_candidates=7)
        first, second = cls.mint_budget(), cls.mint_budget()
        assert first is not second
        assert first.max_candidates == 7
        assert first.deadline_s == pytest.approx(0.1)

    def test_policy_resolves_unknown_to_default(self):
        policy = TenantPolicy()
        assert policy.resolve(None).name == "standard"
        assert policy.resolve("no-such-class").name == "standard"
        assert policy.resolve("  Interactive ").name == "interactive"

    def test_deadline_scale_multiplies_every_class(self):
        classes = default_classes(deadline_scale=2.0)
        assert classes["interactive"].deadline_ms == pytest.approx(300.0)
        assert classes["batch"].deadline_ms == pytest.approx(20_000.0)
        with pytest.raises(ServeError):
            default_classes(deadline_scale=0.0)


# ----------------------------------------------------------------------
# Token bucket + admission controller
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill(self, clock):
        bucket = TokenBucket(rate_per_s=10.0, burst=2)
        assert bucket.try_take() == (True, 0.0)
        assert bucket.try_take() == (True, 0.0)
        granted, retry_after = bucket.try_take()
        assert not granted and retry_after == pytest.approx(0.1)
        clock.now += 0.15  # ~1.5 tokens refilled
        assert bucket.try_take()[0]
        assert not bucket.try_take()[0]

    def test_broken_clock_never_mints_tokens(self, clock):
        bucket = TokenBucket(rate_per_s=1000.0, burst=1)
        assert bucket.try_take()[0]
        clock.broken = True
        with obs.enabled_scope(True), obs.scope():
            for _ in range(5):
                assert not bucket.try_take()[0]
            assert obs.counter_value(names.SERVE_ADMISSION_CLOCK_FAULTS) == 5
        clock.broken = False
        clock.now += 1.0
        assert bucket.try_take()[0]

    def test_rewound_clock_reanchors_without_minting(self, clock):
        bucket = TokenBucket(rate_per_s=1.0, burst=1)
        assert bucket.try_take()[0]
        clock.now -= 50.0  # a rewind must not look like 50s of refill
        assert not bucket.try_take()[0]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ServeError):
            TokenBucket(rate_per_s=0.0, burst=1)
        with pytest.raises(ServeError):
            TokenBucket(rate_per_s=1.0, burst=0)


class TestAdmissionController:
    def _tenant(self, **kwargs) -> TenantClass:
        defaults = dict(
            name="t", deadline_ms=100.0, rate_per_s=1000.0, burst=1000
        )
        defaults.update(kwargs)
        return TenantClass(**defaults)

    def test_admits_within_bounds(self, clock):
        controller = AdmissionController(max_concurrency=2, max_queue=2)
        decision = controller.try_admit(self._tenant())
        assert decision.admitted and decision.reason is None

    def test_rate_limit_sheds_with_retry_after(self, clock):
        controller = AdmissionController()
        tenant = self._tenant(rate_per_s=10.0, burst=1)
        assert controller.try_admit(tenant).admitted
        decision = controller.try_admit(tenant)
        assert not decision.admitted
        assert decision.reason == "rate_limited"
        assert decision.retry_after_s >= 0.05

    def test_queue_bound_sheds(self, clock):
        controller = AdmissionController(max_concurrency=1, max_queue=1)
        controller._in_flight = 2  # one running + one queued
        decision = controller.try_admit(self._tenant())
        assert not decision.admitted and decision.reason == "queue_full"

    def test_raising_overflow_probe_absorbed_into_shed(self, clock, monkeypatch):
        from repro.serve import admission as admission_mod

        def exploding_probe() -> bool:
            raise ArithmeticError("boom")

        monkeypatch.setattr(admission_mod, "_overflow_probe", exploding_probe)
        decision = AdmissionController().try_admit(self._tenant())
        assert not decision.admitted and decision.reason == "queue_full"

    def test_slot_bookkeeping(self, clock):
        controller = AdmissionController(max_concurrency=2, max_queue=4)

        async def go():
            async with controller.slot():
                assert controller.in_flight == 1
            assert controller.in_flight == 0

        asyncio.run(go())


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_consecutive_failures_only(self, clock):
        breaker = CircuitBreaker("idx", failure_threshold=3, recovery_s=1.0)
        for _ in range(2):
            breaker.record_failure()
        breaker.record_success()  # resets the streak
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_half_open_probe_success_closes(self, clock):
        breaker = CircuitBreaker("idx", failure_threshold=1, recovery_s=1.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now += 1.5
        assert breaker.allow()  # the probe
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self, clock):
        breaker = CircuitBreaker("idx", failure_threshold=1, recovery_s=1.0)
        breaker.record_failure()
        clock.now += 1.5
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_broken_clock_keeps_breaker_open(self, clock):
        breaker = CircuitBreaker("idx", failure_threshold=1, recovery_s=1.0)
        breaker.record_failure()
        clock.broken = True
        clock.now += 100.0
        assert not breaker.allow()  # never flap open on a broken clock
        clock.broken = False
        assert breaker.allow()  # healthy again: window re-anchors, probes
        assert breaker.state is BreakerState.HALF_OPEN or not breaker.allow()

    def test_breaker_opened_on_broken_clock_recovers(self, clock):
        breaker = CircuitBreaker("idx", failure_threshold=1, recovery_s=1.0)
        clock.broken = True
        breaker.record_failure()  # _opened_at is None
        assert not breaker.allow()
        clock.broken = False
        assert not breaker.allow()  # anchors the window at this reading
        clock.now += 1.5
        assert breaker.allow()

    def test_retry_after_counts_down(self, clock):
        breaker = CircuitBreaker("idx", failure_threshold=1, recovery_s=2.0)
        assert breaker.retry_after_s() == 0.0
        breaker.record_failure()
        assert breaker.retry_after_s() == pytest.approx(2.0)
        clock.now += 1.5
        assert breaker.retry_after_s() == pytest.approx(0.5)

    def test_transitions_are_counted(self, clock):
        with obs.enabled_scope(True), obs.scope():
            breaker = CircuitBreaker("idx", failure_threshold=1, recovery_s=1.0)
            breaker.record_failure()
            clock.now += 1.5
            breaker.allow()
            breaker.record_success()
            assert obs.counter_value(names.breaker_transition("idx", "open")) == 1
            assert (
                obs.counter_value(names.breaker_transition("idx", "half_open"))
                == 1
            )
            assert (
                obs.counter_value(names.breaker_transition("idx", "closed")) == 1
            )

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ServeError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ServeError):
            CircuitBreaker("x", recovery_s=0.0)
        with pytest.raises(ServeError):
            CircuitBreaker("x", half_open_probes=0)


# ----------------------------------------------------------------------
# Retry / hedging
# ----------------------------------------------------------------------
def _faulted(reason: str = "fault", absorbed: int = 1) -> PartialResult:
    report = ResilienceReport()
    report.mark_incomplete(reason)
    report.absorbed_faults = absorbed
    return PartialResult([], report)


class TestRetry:
    def test_is_transient_classification(self):
        assert is_transient(_faulted())
        assert is_transient(_faulted(reason="index-fault"))
        # Budget exhaustion is not transient, faults or not.
        assert not is_transient(_faulted(reason="deadline"))
        assert not is_transient(_faulted(reason="clock"))
        # Degradation without absorbed faults is not transient.
        assert not is_transient(_faulted(absorbed=0))
        # Clean outcomes are not transient.
        assert not is_transient([1, 2, 3])
        assert not is_transient(PartialResult([1], ResilienceReport()))

    def test_policy_validation_and_backoff_jitter(self):
        with pytest.raises(ServeError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ServeError):
            RetryPolicy(jitter=1.5)
        policy = RetryPolicy(backoff_s=0.1, jitter=0.5)
        rng = random.Random(7)
        pauses = [policy.backoff(1, rng) for _ in range(50)]
        assert all(0.05 <= p <= 0.15 for p in pauses)
        assert len({round(p, 9) for p in pauses}) > 1  # actually jittered

    def _run(self, outcomes, *, allow_retry=True, hedge=False):
        calls = []

        async def attempt():
            calls.append(None)
            return outcomes[min(len(calls) - 1, len(outcomes) - 1)]

        policy = RetryPolicy(backoff_s=0.0, hedge_delay_s=0.0)
        settled = asyncio.run(
            run_with_retry(
                attempt,
                policy,
                random.Random(0),
                allow_retry=allow_retry,
                hedge=hedge,
            )
        )
        return settled, len(calls)

    def test_clean_outcome_never_retried(self):
        settled, calls = self._run([[1, 2]])
        assert settled.outcome == [1, 2] and calls == 1
        assert not settled.rescued

    def test_transient_fault_retried_and_rescued(self):
        settled, calls = self._run([_faulted(), [1, 2]])
        assert calls == 2
        assert settled.outcome == [1, 2]
        assert settled.attempts == 2 and settled.rescued

    def test_double_fault_keeps_first_outcome(self):
        first = _faulted()
        settled, calls = self._run([first, _faulted()])
        assert calls == 2 and settled.outcome is first and not settled.rescued

    def test_deadline_exhaustion_not_retried(self):
        settled, calls = self._run([_faulted(reason="deadline"), [1]])
        assert calls == 1 and settled.outcome is not None
        assert settled.attempts == 1

    def test_retry_disabled_per_tenant(self):
        settled, calls = self._run([_faulted(), [1]], allow_retry=False)
        assert calls == 1 and settled.attempts == 1

    def test_hedge_counts_and_rescues(self):
        with obs.enabled_scope(True), obs.scope():
            settled, calls = self._run([_faulted(), [5]], hedge=True)
            assert calls == 2 and settled.hedged and settled.rescued
            assert obs.counter_value(names.SERVE_HEDGES) == 1
            assert obs.counter_value(names.SERVE_RETRY_RESCUES) == 1
