"""Tests for :mod:`repro.analysis` — the domlint rule engine.

Covers every rule with violating and compliant fixtures, suppression
comments, baseline grandfathering (add + expire), the PAPER.md citation
grammar and cache, and the meta-test that the shipped ``src/repro``
tree is domlint-clean under the checked-in baseline.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_RULES,
    Baseline,
    PaperIndex,
    extract_citations,
    fingerprint,
    lint_paths,
    parse_suppressions,
    rules_by_name,
)
from repro.analysis.base import dotted_module
from repro.obs import names

REPO_ROOT = Path(__file__).resolve().parent.parent

PAPER_FIXTURE = textwrap.dedent(
    """\
    # A tiny paper

    We prove Lemmas 1-3 and Theorem 1, define the quartic in Eq. (14),
    and evaluate in Sections 4.1-4.2.  Algorithm 1 ties it together.
    """
)


def lint_source(
    tmp_path: Path,
    relative: str,
    source: str,
    rules=None,
    paper_text: "str | None" = None,
    baseline: "Baseline | None" = None,
):
    """Write *source* at ``tmp_path/relative`` and lint just that file."""
    file = tmp_path / relative
    file.parent.mkdir(parents=True, exist_ok=True)
    file.write_text(textwrap.dedent(source), encoding="utf-8")
    paper = None
    if paper_text is not None:
        paper = tmp_path / "PAPER.md"
        paper.write_text(paper_text, encoding="utf-8")
    return lint_paths(
        [file],
        rules=rules,
        baseline=baseline,
        paper=paper,
        root=tmp_path,
        cache=False,
    )


def rule_names(report) -> "list[str]":
    return [finding.rule for finding in report.actionable]


class TestFramework:
    def test_dotted_module_anchors_at_repro(self):
        assert dotted_module(Path("src/repro/core/x.py")) == "repro.core.x"
        assert dotted_module(Path("/tmp/t/repro/robust/y.py")) == "repro.robust.y"
        assert dotted_module(Path("src/repro/core/__init__.py")) == "repro.core"
        assert dotted_module(Path("elsewhere/file.py")) == "file"

    def test_parse_suppressions_ignores_strings(self):
        source = 's = "# domlint: ignore[margin-compare]"\n'
        assert parse_suppressions(source) == {}

    def test_parse_suppressions_multiple_rules(self):
        source = "x = 1  # domlint: ignore[a, b]\n"
        assert parse_suppressions(source) == {1: frozenset({"a", "b"})}

    def test_rules_by_name_accepts_codes_and_names(self):
        assert [r.name for r in rules_by_name(["DOM103"])] == ["margin-compare"]
        assert [r.name for r in rules_by_name(["metric-name"])] == ["metric-name"]
        with pytest.raises(ValueError, match="unknown rule"):
            rules_by_name(["no-such-rule"])

    def test_every_rule_has_identity(self):
        codes = [rule.code for rule in ALL_RULES]
        assert len(ALL_RULES) == 15
        assert len(set(codes)) == 15
        assert all(rule.name and rule.description for rule in ALL_RULES)

    def test_every_rule_has_explain_material(self):
        for rule in ALL_RULES:
            assert rule.rationale, rule.code
            assert rule.invariant, rule.code
            assert rule.bad_example, rule.code
            assert rule.good_example, rule.code


class TestVerdictBoolRule:
    def test_truth_test_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/core/x.py",
            """\
            def f(verdict):
                if verdict:
                    return 1
            """,
        )
        assert rule_names(report) == ["verdict-bool"]

    def test_bool_call_flagged(self, tmp_path):
        report = lint_source(
            tmp_path, "repro/queries/x.py", "y = bool(my_verdict)\n"
        )
        assert rule_names(report) == ["verdict-bool"]

    def test_identity_comparison_ok(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/core/x.py",
            """\
            def f(verdict, Verdict):
                if verdict is Verdict.TRUE:
                    return 1
            """,
        )
        assert rule_names(report) == []

    def test_robust_package_exempt(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/robust/x.py",
            """\
            def f(verdict):
                if verdict:
                    return 1
            """,
        )
        assert rule_names(report) == []


class TestCriterionTemplateRule:
    VIOLATION = """\
        class FancyCriterion(DominanceCriterion):
            def dominates(self, sa, sb, sq):
                return True
        """

    def test_dominates_override_flagged(self, tmp_path):
        report = lint_source(tmp_path, "repro/core/fancy.py", self.VIOLATION)
        assert rule_names(report) == ["criterion-template"]

    def test_decide_override_ok(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/core/fancy.py",
            """\
            class FancyCriterion(DominanceCriterion):
                def _decide(self, sa, sb, sq):
                    return True
            """,
        )
        assert rule_names(report) == []

    def test_base_module_exempt(self, tmp_path):
        report = lint_source(tmp_path, "repro/core/base.py", self.VIOLATION)
        assert rule_names(report) == []

    def test_unrelated_class_ok(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/core/other.py",
            """\
            class Helper:
                def dominates(self, other):
                    return False
            """,
        )
        assert rule_names(report) == []


class TestMarginCompareRule:
    def test_equality_flagged(self, tmp_path):
        report = lint_source(
            tmp_path, "repro/core/x.py", "ok = margin == 0.0\n"
        )
        assert rule_names(report) == ["margin-compare"]

    def test_lte_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/robust/x.py",
            "def f(margin_lo):\n    return margin_lo <= 0.0\n",
        )
        assert rule_names(report) == ["margin-compare"]

    def test_strict_less_than_ok(self, tmp_path):
        report = lint_source(tmp_path, "repro/core/x.py", "ok = margin < 0.0\n")
        assert rule_names(report) == []

    def test_ladder_exempt(self, tmp_path):
        report = lint_source(
            tmp_path, "repro/robust/ladder.py", "ok = margin == 0.0\n"
        )
        assert rule_names(report) == []

    def test_outside_core_robust_ok(self, tmp_path):
        report = lint_source(
            tmp_path, "repro/queries/x.py", "ok = margin == 0.0\n"
        )
        assert rule_names(report) == []


class TestMetricNameRule:
    def test_unknown_literal_flagged(self, tmp_path):
        report = lint_source(
            tmp_path, "repro/core/x.py", 'obs.incr("nope.metric")\n'
        )
        assert rule_names(report) == ["metric-name"]

    def test_registered_literal_ok(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/core/x.py",
            f'obs.incr("{names.HYPERBOLA_CALLS}")\n',
        )
        assert rule_names(report) == []

    def test_registry_constant_ok(self, tmp_path):
        report = lint_source(
            tmp_path, "repro/core/x.py", "obs.incr(names.HYPERBOLA_CALLS)\n"
        )
        assert rule_names(report) == []

    def test_registry_helper_ok(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/robust/x.py",
            'obs.incr(names.verified_stage("closed"))\n',
        )
        assert rule_names(report) == []

    def test_fstring_matching_family_ok(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/robust/x.py",
            'obs.incr(f"verified.stage.{stage}")\n',
        )
        assert rule_names(report) == []

    def test_fstring_unknown_family_flagged(self, tmp_path):
        report = lint_source(
            tmp_path, "repro/core/x.py", 'obs.incr(f"nope.{x}")\n'
        )
        assert rule_names(report) == ["metric-name"]

    def test_obs_package_exempt(self, tmp_path):
        report = lint_source(
            tmp_path, "repro/obs/x.py", 'obs.incr("nope.metric")\n'
        )
        assert rule_names(report) == []


class TestPaperRefRule:
    def test_missing_citation_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/core/x.py",
            '"""Uses Lemma 7 for pruning."""\n',
            paper_text=PAPER_FIXTURE,
        )
        assert rule_names(report) == ["paper-ref"]
        assert "lemma 7" in report.actionable[0].message

    def test_existing_citations_ok(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/core/x.py",
            '"""Lemmas 1-3, Eq. (14) and Section 4.2 (Algorithm 1)."""\n',
            paper_text=PAPER_FIXTURE,
        )
        assert rule_names(report) == []

    def test_function_docstrings_checked(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/core/x.py",
            '''\
            def f():
                """Implements Algorithm 9."""
            ''',
            paper_text=PAPER_FIXTURE,
        )
        assert rule_names(report) == ["paper-ref"]

    def test_no_paper_means_no_findings(self, tmp_path):
        report = lint_source(
            tmp_path, "repro/core/x.py", '"""Uses Lemma 99."""\n'
        )
        assert rule_names(report) == []


class TestUnseededRandomRule:
    def test_default_rng_without_seed_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/core/x.py",
            "import numpy as np\nrng = np.random.default_rng()\n",
        )
        assert rule_names(report) == ["unseeded-random"]

    def test_default_rng_with_seed_ok(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/core/x.py",
            "import numpy as np\nrng = np.random.default_rng(42)\n",
        )
        assert rule_names(report) == []

    def test_legacy_global_numpy_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/queries/x.py",
            "import numpy as np\nx = np.random.rand(3)\n",
        )
        assert rule_names(report) == ["unseeded-random"]

    def test_stdlib_random_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/core/x.py",
            "import random\nx = random.random()\n",
        )
        assert rule_names(report) == ["unseeded-random"]

    def test_unrelated_random_name_ok(self, tmp_path):
        # No `import random` in scope: `random.choice` is someone
        # else's object, not the stdlib module.
        report = lint_source(
            tmp_path, "repro/core/x.py", "x = random.choice(items)\n"
        )
        assert rule_names(report) == []

    def test_data_package_exempt(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/data/x.py",
            "import numpy as np\nx = np.random.rand(3)\n",
        )
        assert rule_names(report) == []


class TestSwallowedArithmeticRule:
    def test_except_exception_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/core/x.py",
            """\
            try:
                f()
            except Exception:
                pass
            """,
        )
        assert rule_names(report) == ["swallowed-arithmetic"]

    def test_bare_except_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/geometry/x.py",
            """\
            try:
                f()
            except:
                pass
            """,
        )
        assert rule_names(report) == ["swallowed-arithmetic"]

    def test_overbroad_tuple_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/robust/x.py",
            """\
            try:
                f()
            except (ValueError, Exception):
                pass
            """,
        )
        assert rule_names(report) == ["swallowed-arithmetic"]

    def test_narrow_handler_ok(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/core/x.py",
            """\
            try:
                f()
            except (ArithmeticError, ValueError):
                pass
            """,
        )
        assert rule_names(report) == []

    def test_non_kernel_package_exempt(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/experiments/x.py",
            """\
            try:
                f()
            except Exception:
                pass
            """,
        )
        assert rule_names(report) == []


class TestHotPathLoopRule:
    def test_for_loop_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/core/hyperbola.py",
            "for i in range(3):\n    pass\n",
        )
        assert rule_names(report) == ["hot-path-loop"]
        assert report.actionable[0].severity.value == "warning"

    def test_linalg_flagged(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/core/hyperbola.py",
            "import numpy as np\nn = np.linalg.norm(x)\n",
        )
        assert rule_names(report) == ["hot-path-loop"]

    def test_other_core_modules_exempt(self, tmp_path):
        report = lint_source(
            tmp_path, "repro/core/batch.py", "for i in range(3):\n    pass\n"
        )
        assert rule_names(report) == []


class TestSuppressions:
    def test_matching_suppression_applies(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/core/x.py",
            "ok = margin == 0.0  # domlint: ignore[margin-compare]\n",
        )
        assert rule_names(report) == []
        assert report.suppressed == 1

    def test_bare_suppression_applies_to_all(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/core/x.py",
            "ok = margin == 0.0  # domlint: ignore\n",
        )
        assert rule_names(report) == []
        assert report.suppressed == 1

    def test_wrong_rule_suppression_does_not_apply(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/core/x.py",
            "ok = margin == 0.0  # domlint: ignore[metric-name]\n",
        )
        assert rule_names(report) == ["margin-compare"]
        assert report.suppressed == 0


class TestBaseline:
    def test_baselined_finding_not_actionable(self, tmp_path):
        violation = "ok = margin == 0.0\n"
        first = lint_source(tmp_path, "repro/core/x.py", violation)
        baseline = Baseline.from_findings(first.actionable)
        second = lint_source(
            tmp_path, "repro/core/x.py", violation, baseline=baseline
        )
        assert second.actionable == []
        assert len(second.baselined) == 1

    def test_fingerprint_survives_line_drift(self, tmp_path):
        first = lint_source(tmp_path, "repro/core/x.py", "ok = margin == 0.0\n")
        baseline = Baseline.from_findings(first.actionable)
        shifted = "# a comment\n\n\nok = margin == 0.0\n"
        second = lint_source(
            tmp_path, "repro/core/x.py", shifted, baseline=baseline
        )
        assert second.actionable == []
        assert len(second.baselined) == 1

    def test_new_finding_stays_actionable(self, tmp_path):
        first = lint_source(tmp_path, "repro/core/x.py", "ok = margin == 0.0\n")
        baseline = Baseline.from_findings(first.actionable)
        grown = "ok = margin == 0.0\nbad = other_margin <= 1.0\n"
        second = lint_source(
            tmp_path, "repro/core/x.py", grown, baseline=baseline
        )
        assert len(second.baselined) == 1
        assert len(second.actionable) == 1
        assert "other_margin" in second.actionable[0].message

    def test_multiset_matching(self, tmp_path):
        # Two identical lines fingerprint identically; one baseline
        # entry absorbs only one of them.
        violation = "a = margin == 0.0\n"
        first = lint_source(tmp_path, "repro/core/x.py", violation)
        baseline = Baseline.from_findings(first.actionable)
        doubled = "a = margin == 0.0\na = margin == 0.0\n"
        second = lint_source(
            tmp_path, "repro/core/x.py", doubled, baseline=baseline
        )
        assert len(second.baselined) == 1
        assert len(second.actionable) == 1

    def test_save_load_roundtrip(self, tmp_path):
        first = lint_source(tmp_path, "repro/core/x.py", "ok = margin == 0.0\n")
        baseline = Baseline.from_findings(first.actionable)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == baseline.entries
        payload = json.loads(path.read_text())
        assert payload["findings"][0]["rule"] == "margin-compare"

    def test_update_expires_fixed_entries(self, tmp_path):
        first = lint_source(tmp_path, "repro/core/x.py", "ok = margin == 0.0\n")
        stale = Baseline.from_findings(first.actionable)
        # The violation is fixed; rebuilding from current findings
        # (what --update-baseline does) drops the old entry.
        clean = lint_source(tmp_path, "repro/core/x.py", "ok = margin < 0.0\n")
        refreshed = Baseline.from_findings(clean.all_findings)
        assert stale.entries
        assert not refreshed.entries

    def test_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").entries == {}

    def test_fingerprint_depends_on_rule_and_content(self, tmp_path):
        report = lint_source(
            tmp_path,
            "repro/core/x.py",
            "a = margin == 0.0\nb = other_margin == 0.0\n",
        )
        prints = [fingerprint(f) for f in report.actionable]
        assert len(set(prints)) == 2


class TestPaperRefGrammar:
    def test_plural_range(self):
        assert extract_citations("Lemmas 2-4") == {
            ("lemma", "2"),
            ("lemma", "3"),
            ("lemma", "4"),
        }

    def test_plural_comma_and_list(self):
        assert extract_citations("Eqs. 1, 3 and 4") == {
            ("equation", "1"),
            ("equation", "3"),
            ("equation", "4"),
        }

    def test_singular_comma_is_prose(self):
        # "Lemma 1, 2014" cites Lemma 1 only.
        assert extract_citations("see Lemma 1, 2014 vintage") == {
            ("lemma", "1")
        }

    def test_dotted_section_range(self):
        assert extract_citations("Sections 7.1-7.2") == {
            ("section", "7.1"),
            ("section", "7.2"),
        }

    def test_section_sign(self):
        assert extract_citations("per §5.1") == {("section", "5.1")}

    def test_parenthesised_equation(self):
        assert extract_citations("solve Eq. (14)") == {("equation", "14")}

    def test_fig_abbreviation(self):
        assert extract_citations("Fig. 9 and Figure 10") == {
            ("figure", "9"),
            ("figure", "10"),
        }

    def test_case_insensitive(self):
        assert extract_citations("ALGORITHM 1") == {("algorithm", "1")}


class TestPaperIndexCache:
    def test_cache_roundtrip(self, tmp_path):
        paper = tmp_path / "PAPER.md"
        paper.write_text(PAPER_FIXTURE, encoding="utf-8")
        index = PaperIndex.load(paper)
        cache = tmp_path / ".domlint_cache" / "paper_refs.json"
        assert cache.is_file()
        again = PaperIndex.load(paper)
        assert again.references == index.references
        assert ("lemma", "2") in again

    def test_cache_invalidated_by_edit(self, tmp_path):
        paper = tmp_path / "PAPER.md"
        paper.write_text(PAPER_FIXTURE, encoding="utf-8")
        PaperIndex.load(paper)
        paper.write_text(PAPER_FIXTURE + "\nAlso Lemma 9.\n", encoding="utf-8")
        assert ("lemma", "9") in PaperIndex.load(paper)

    def test_corrupt_cache_is_rebuilt(self, tmp_path):
        paper = tmp_path / "PAPER.md"
        paper.write_text(PAPER_FIXTURE, encoding="utf-8")
        cache = tmp_path / ".domlint_cache" / "paper_refs.json"
        cache.parent.mkdir()
        cache.write_text("{not json", encoding="utf-8")
        assert ("lemma", "1") in PaperIndex.load(paper)


class TestNamesRegistry:
    def test_static_constants_are_known(self):
        assert names.is_known(names.HYPERBOLA_CALLS)
        assert names.is_known(names.VERIFIED_FALLBACK_NONE)

    def test_family_helpers_produce_known_names(self):
        assert names.is_known(names.verified_stage("closed"))
        assert names.is_known(names.verified_stage_failed("exact"))
        assert names.is_known(names.verified_fallback("gp"))
        assert names.is_known(names.fault("quartic", "nan"))
        assert names.is_known(names.batch_calls("hyperbola"))

    def test_unknown_names_rejected(self):
        assert not names.is_known("totally.made.up.metric")
        assert not names.is_known("hyperbola.calls.extra")


class TestShippedTreeIsClean:
    def test_src_repro_is_domlint_clean(self):
        baseline = Baseline.load(REPO_ROOT / ".domlint-baseline.json")
        report = lint_paths(
            [REPO_ROOT / "src" / "repro"],
            baseline=baseline,
            paper=REPO_ROOT / "PAPER.md",
            root=REPO_ROOT,
            cache=False,
        )
        assert report.parse_errors == []
        assert [f.render() for f in report.actionable] == []
        # The grandfathered debt can shrink but not silently grow.
        assert len(report.baselined) <= sum(baseline.entries.values())
