"""Property-based tests for the kNN layer over random mini-worlds."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.geometry.hypersphere import Hypersphere
from repro.index.linear import LinearIndex
from repro.index.sstree import SSTree
from repro.index.vptree import VPTree
from repro.queries.knn import knn_query, knn_reference


@st.composite
def mini_worlds(draw):
    """A small random dataset plus a query sphere and a k."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=5, max_value=60))
    d = draw(st.integers(min_value=1, max_value=4))
    mu = draw(st.sampled_from([0.0, 0.5, 3.0]))
    rng = np.random.default_rng(seed)
    items = [
        (
            i,
            Hypersphere(
                rng.normal(0.0, 10.0, d),
                float(max(rng.normal(mu, mu / 4.0 + 0.1), 0.0)),
            ),
        )
        for i in range(n)
    ]
    query = Hypersphere(
        rng.normal(0.0, 10.0, d), float(max(rng.normal(mu, 1.0), 0.0))
    )
    k = draw(st.integers(min_value=1, max_value=min(n, 10)))
    return items, query, k


class TestTwoPhaseProperties:
    @given(mini_worlds())
    @settings(max_examples=40)
    def test_exact_on_both_indexes(self, world):
        items, query, k = world
        expected = knn_reference(items, query, k).key_set()
        ss = SSTree.bulk_load(items, max_entries=4)
        vp = VPTree.build(items, leaf_capacity=4)
        for index in (ss, vp, LinearIndex(items)):
            got = knn_query(index, query, k, algorithm="two-phase")
            assert got.key_set() == expected


class TestIncrementalProperties:
    @given(mini_worlds())
    @settings(max_examples=40)
    def test_subset_anchor_and_monotonicity(self, world):
        items, query, k = world
        truth = knn_reference(items, query, k)
        tree = SSTree.bulk_load(items, max_entries=4)
        exact = knn_query(tree, query, k)
        # Precision-100% subset property.
        assert exact.key_set() <= truth.key_set()
        # The anchor distance is found exactly.
        assert abs(exact.distk - truth.distk) <= 1e-9 * (1.0 + truth.distk)
        # Correct-but-unsound criteria only ever add results.
        for name in ("minmax", "mbr", "gp"):
            loose = knn_query(tree, query, k, criterion=name)
            assert exact.key_set() <= loose.key_set()

    @given(mini_worlds())
    @settings(max_examples=25)
    def test_answer_contains_topk_by_maxdist(self, world):
        """Everything with MaxDist <= distk must always be returned."""
        items, query, k = world
        flat = LinearIndex(items)
        tree = SSTree.bulk_load(items, max_entries=4)
        result = knn_query(tree, query, k)
        maxdists = flat.max_dists(query)
        core = {
            key
            for key, dist_max in zip(flat.keys, maxdists)
            if dist_max <= result.distk
        }
        assert core <= result.key_set()
