"""Tests for the dataset generators and workload builders (Section 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.real import REAL_DATASET_SPECS, real_dataset, real_points
from repro.data.synthetic import Dataset, attach_radii, synthetic_dataset
from repro.data.workload import DominanceWorkload, knn_queries
from repro.exceptions import DatasetError


class TestDataset:
    def test_basic_accessors(self, rng):
        ds = Dataset("x", rng.normal(0, 1, (10, 3)), np.abs(rng.normal(0, 1, 10)))
        assert len(ds) == 10
        assert ds.dimension == 3
        sphere = ds.sphere(4)
        assert np.array_equal(sphere.center, ds.centers[4])
        items = list(ds.items())
        assert items[0][0] == 0 and len(items) == 10

    def test_validation(self, rng):
        with pytest.raises(DatasetError):
            Dataset("x", rng.normal(0, 1, (10,)), np.ones(10))
        with pytest.raises(DatasetError):
            Dataset("x", rng.normal(0, 1, (10, 2)), np.ones(9))
        with pytest.raises(DatasetError):
            Dataset("x", rng.normal(0, 1, (10, 2)), -np.ones(10))

    def test_subset(self, rng):
        ds = synthetic_dataset(100, 2, seed=0)
        sub = ds.subset(30, rng=rng)
        assert len(sub) == 30
        with pytest.raises(DatasetError):
            ds.subset(101, rng=rng)


class TestSyntheticGenerator:
    def test_shapes_and_determinism(self):
        a = synthetic_dataset(500, 4, mu=10.0, seed=3)
        b = synthetic_dataset(500, 4, mu=10.0, seed=3)
        assert a.centers.shape == (500, 4)
        assert np.array_equal(a.centers, b.centers)
        assert np.array_equal(a.radii, b.radii)

    def test_gaussian_center_statistics(self):
        ds = synthetic_dataset(20_000, 3, seed=1)
        assert ds.centers.mean() == pytest.approx(100.0, abs=1.0)
        assert ds.centers.std() == pytest.approx(25.0, abs=1.0)

    def test_radius_statistics(self):
        ds = synthetic_dataset(20_000, 2, mu=50.0, seed=2)
        assert ds.radii.mean() == pytest.approx(50.0, rel=0.05)
        assert ds.radii.std() == pytest.approx(12.5, rel=0.1)
        assert np.all(ds.radii >= 0.0)

    def test_radii_clipped_at_zero(self):
        # mu = 1, sigma = 10: many raw draws are negative.
        ds = synthetic_dataset(5_000, 2, mu=1.0, sigma=10.0, seed=4)
        assert np.all(ds.radii >= 0.0)
        assert np.any(ds.radii == 0.0)

    def test_uniform_distributions(self):
        ds = synthetic_dataset(
            10_000,
            2,
            center_distribution="uniform",
            radius_distribution="uniform",
            seed=5,
        )
        assert ds.centers.min() >= 0.0 and ds.centers.max() <= 200.0
        assert ds.radii.min() >= 0.0 and ds.radii.max() <= 200.0
        assert "U-U" in ds.name

    def test_distribution_grid_labels(self):
        for centers, radii, label in (
            ("gaussian", "gaussian", "G-G"),
            ("gaussian", "uniform", "G-U"),
            ("uniform", "gaussian", "U-G"),
        ):
            ds = synthetic_dataset(
                10,
                2,
                center_distribution=centers,
                radius_distribution=radii,
                seed=0,
            )
            assert label in ds.name

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            synthetic_dataset(0, 2)
        with pytest.raises(DatasetError):
            synthetic_dataset(10, 0)
        with pytest.raises(DatasetError):
            synthetic_dataset(10, 2, center_distribution="zipf")
        with pytest.raises(DatasetError):
            synthetic_dataset(10, 2, seed=1, rng=np.random.default_rng(0))

    def test_attach_radii_validates_mu(self, rng):
        with pytest.raises(DatasetError):
            attach_radii(np.zeros((5, 2)), mu=-1.0, rng=rng)


class TestRealSurrogates:
    def test_specs_match_the_paper(self):
        assert REAL_DATASET_SPECS["nba"].size == 17_265
        assert REAL_DATASET_SPECS["nba"].dimension == 17
        assert REAL_DATASET_SPECS["color"].size == 68_040
        assert REAL_DATASET_SPECS["color"].dimension == 9
        assert REAL_DATASET_SPECS["texture"].size == 68_040
        assert REAL_DATASET_SPECS["texture"].dimension == 16
        assert REAL_DATASET_SPECS["forest"].size == 82_012
        assert REAL_DATASET_SPECS["forest"].dimension == 10

    @pytest.mark.parametrize("name", sorted(REAL_DATASET_SPECS))
    def test_sliced_generation(self, name):
        points = real_points(name, size=1000)
        assert points.shape == (1000, REAL_DATASET_SPECS[name].dimension)
        assert np.all(np.isfinite(points))

    def test_deterministic(self):
        assert np.array_equal(
            real_points("nba", size=500), real_points("nba", size=500)
        )

    def test_color_features_bounded(self):
        points = real_points("color", size=2000)
        assert points.min() >= 0.0
        assert points.max() <= 1.0

    def test_nba_counts_nonnegative_and_skewed(self):
        points = real_points("nba", size=5000)
        assert points.min() >= 0.0
        # Skew: mean above median for count-like columns.
        assert np.mean(points) > np.median(points)

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            real_points("imagenet")

    def test_oversized_slice(self):
        with pytest.raises(DatasetError):
            real_points("nba", size=100_000)

    def test_genuine_file_preferred(self, tmp_path):
        genuine = np.arange(34.0).reshape(2, 17)
        np.save(tmp_path / "nba.npy", genuine)
        assert np.array_equal(real_points("nba", data_dir=tmp_path), genuine)

    def test_genuine_file_shape_checked(self, tmp_path):
        np.save(tmp_path / "nba.npy", np.zeros((5, 3)))
        with pytest.raises(DatasetError):
            real_points("nba", data_dir=tmp_path)

    def test_real_dataset_attaches_radii(self):
        ds = real_dataset("color", mu=5.0, size=800)
        assert len(ds) == 800
        assert ds.radii.mean() == pytest.approx(5.0, rel=0.1)


class TestWorkloads:
    def test_dominance_workload_shape(self):
        ds = synthetic_dataset(100, 3, seed=0)
        workload = DominanceWorkload.from_dataset(ds, size=500, seed=1)
        assert len(workload) == 500
        assert workload.dimension == 3
        for array in workload.arrays()[:3]:
            assert array.shape == (500, 3)
        for array in workload.arrays()[3:]:
            assert array.shape == (500,)

    def test_triples_match_arrays(self):
        ds = synthetic_dataset(50, 2, seed=0)
        workload = DominanceWorkload.from_dataset(ds, size=10, seed=1)
        for i, (sa, sb, sq) in enumerate(workload.triples()):
            assert np.array_equal(sa.center, workload.ca[i])
            assert sb.radius == workload.rb[i]
            assert np.array_equal(sq.center, workload.cq[i])

    def test_members_come_from_dataset(self):
        ds = synthetic_dataset(30, 2, seed=0)
        workload = DominanceWorkload.from_dataset(ds, size=100, seed=2)
        centers = {tuple(c) for c in ds.centers}
        for row in workload.ca:
            assert tuple(row) in centers

    def test_too_small_dataset_rejected(self):
        ds = synthetic_dataset(2, 2, seed=0)
        with pytest.raises(DatasetError):
            DominanceWorkload.from_dataset(ds, size=10)

    def test_knn_queries_drawn_from_dataset(self):
        ds = synthetic_dataset(40, 2, seed=0)
        queries = knn_queries(ds, count=12, seed=3)
        assert len(queries) == 12
        centers = {tuple(c) for c in ds.centers}
        for query in queries:
            assert tuple(query.center) in centers


class TestRelativeMu:
    def test_relative_mu_scales_with_spread(self):
        from repro.data.real import REFERENCE_SPREAD, relative_mu

        wide = np.random.default_rng(0).normal(0.0, 50.0, (1000, 2))
        narrow = wide / 100.0
        assert relative_mu(wide, 10.0) == pytest.approx(
            10.0 * wide.std() / REFERENCE_SPREAD
        )
        assert relative_mu(narrow, 10.0) == pytest.approx(
            relative_mu(wide, 10.0) / 100.0
        )

    def test_zero_spread_passthrough(self):
        from repro.data.real import relative_mu

        assert relative_mu(np.ones((5, 2)), 7.0) == 7.0

    def test_real_dataset_relative_mode(self):
        ds_abs = real_dataset("color", mu=10.0, size=500)
        ds_rel = real_dataset("color", mu=10.0, relative_radii=True, size=500)
        # Absolute mu = 10 swallows the [0, 1] feature space; the
        # relative mode keeps radii commensurate with the data.
        assert ds_rel.radii.mean() < 0.2 < ds_abs.radii.mean()
