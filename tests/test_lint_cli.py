"""Regression tests for the ``repro lint`` command-line interface.

Builds a synthetic ``repro`` tree containing exactly one violation of
every domlint rule (the eight DOM1xx pattern rules and the seven DOM2xx
dataflow rules) and checks that the CLI detects all fifteen, exits
non-zero, honours ``--update-baseline`` (subsequent runs are clean),
and emits machine-readable JSON.  The strict-typing gate is exercised
when mypy is available (it is in CI; locally the test skips).
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.cli import main as lint_main
from repro.analysis.rules import ALL_RULES
from repro.cli import main as repro_main

REPO_ROOT = Path(__file__).resolve().parent.parent

#: One file per rule, each violating exactly that rule.
VIOLATIONS = {
    "repro/queries/verdictish.py": (
        "def f(verdict):\n    if verdict:\n        return 1\n"
    ),
    "repro/core/criterion.py": (
        "class BadCriterion(DominanceCriterion):\n"
        "    def dominates(self, sa, sb, sq):\n"
        "        return True\n"
    ),
    "repro/core/margins.py": "ok = margin == 0.0\n",
    "repro/core/metrics.py": 'obs.incr("not.a.registered.metric")\n',
    "repro/core/cited.py": '"""Relies on Lemma 99."""\n',
    "repro/core/randomness.py": (
        "import numpy as np\nrng = np.random.default_rng()\n"
    ),
    "repro/geometry/handler.py": (
        "try:\n    f()\nexcept Exception:\n    pass\n"
    ),
    "repro/core/hyperbola.py": "for i in range(3):\n    pass\n",
    # DOM201: time.sleep on the event loop.
    "repro/serve/blocking.py": (
        "import time\n\n\n"
        "async def handler():\n"
        "    time.sleep(0.01)\n"
    ),
    # DOM202: executor submission without copy_context().run.
    "repro/serve/submit.py": (
        "async def hop(loop, executor, work):\n"
        "    return await loop.run_in_executor(executor, work)\n"
    ),
    # DOM203: WAL append acked without crossing an fsync barrier.
    "repro/stream/ack.py": (
        "def append(handle, framed):\n"
        "    _io_write(handle, framed)\n"
        "    return True\n"
    ),
    # DOM204: attribute mutated from the loop and a thread, no lock
    # (the submission itself is context-propagated, so only DOM204 fires).
    "repro/serve/shared.py": (
        "import contextvars\n\n\n"
        "class Worker:\n"
        "    async def handle(self, loop, executor):\n"
        "        self.count = 0\n\n"
        "        def bump():\n"
        "            self.count = 1\n\n"
        "        ctx = contextvars.copy_context()\n"
        "        await loop.run_in_executor(executor, ctx.run, bump)\n"
    ),
    # DOM205: the 'snapshot' seam is never injected by any test.
    "repro/robust/faults.py": 'SEAMS = ("quartic", "snapshot")\n',
    # DOM206: candidate loop with a possibly-live, uncharged budget.
    "repro/queries/scan.py": (
        "from repro.resilience.budget import current as current_budget\n\n\n"
        "def scan(index, query):\n"
        "    budget = current_budget()\n"
        "    hits = []\n"
        "    for key, sphere in index.entries:\n"
        "        hits.append((key, sphere))\n"
        "    return hits\n"
    ),
    # DOM207: a registered signal handler that blocks (sync def, so
    # DOM201 stays silent; only the handler rule fires).
    "repro/serve/sighandler.py": (
        "import signal\n"
        "import time\n\n\n"
        "def on_term(signum, frame):\n"
        "    time.sleep(0.1)\n\n\n"
        "signal.signal(signal.SIGTERM, on_term)\n"
    ),
}

PAPER = "We prove Lemma 1 and Eq. (14) in Section 4.2.\n"

#: Chaos-test evidence for the seam-coverage rule: covers 'quartic'
#: but not 'snapshot', so DOM205 reports exactly one uncovered seam.
CHAOS_TEST = (
    "from repro.robust import faults\n\n\n"
    "def test_quartic_seam():\n"
    '    with faults.inject("quartic", mode="nan"):\n'
    "        pass\n"
)


@pytest.fixture()
def violation_tree(tmp_path: Path) -> Path:
    for relative, source in VIOLATIONS.items():
        file = tmp_path / relative
        file.parent.mkdir(parents=True, exist_ok=True)
        file.write_text(textwrap.dedent(source), encoding="utf-8")
    (tmp_path / "PAPER.md").write_text(PAPER, encoding="utf-8")
    tests = tmp_path / "tests"
    tests.mkdir()
    (tests / "test_chaos.py").write_text(CHAOS_TEST, encoding="utf-8")
    return tmp_path


def run_lint(*argv: str) -> int:
    return lint_main(list(argv))


class TestDetection:
    def test_every_rule_detected_and_exit_nonzero(
        self, violation_tree, capsys
    ):
        code = run_lint(
            str(violation_tree / "repro"),
            "--format=json",
            "--no-cache",
            "--paper",
            str(violation_tree / "PAPER.md"),
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        detected = {finding["rule"] for finding in payload["findings"]}
        assert detected == {rule.name for rule in ALL_RULES}
        assert payload["exit_code"] == 1

    def test_human_output_is_clickable(self, violation_tree, capsys):
        run_lint(
            str(violation_tree / "repro"),
            "--no-cache",
            "--paper",
            str(violation_tree / "PAPER.md"),
        )
        out = capsys.readouterr().out
        assert "margins.py:1:" in out
        assert "error[margin-compare]" in out
        assert "domlint:" in out.splitlines()[-1]

    def test_rule_selection(self, violation_tree, capsys):
        code = run_lint(
            str(violation_tree / "repro"),
            "--rules=margin-compare",
            "--format=json",
            "--no-cache",
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in payload["findings"]} == {"margin-compare"}

    def test_unknown_rule_is_usage_error(self, violation_tree):
        with pytest.raises(SystemExit) as excinfo:
            run_lint(str(violation_tree / "repro"), "--rules=bogus")
        assert excinfo.value.code == 2

    def test_missing_path_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            run_lint(str(tmp_path / "nowhere"))
        assert excinfo.value.code == 2

    def test_parse_error_fails_the_run(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(:\n", encoding="utf-8")
        code = run_lint(str(tmp_path / "repro"), "--no-cache")
        assert code == 1
        assert "error[parse]" in capsys.readouterr().out


class TestBaselineWorkflow:
    def test_update_then_clean(self, violation_tree, capsys):
        baseline = violation_tree / ".domlint-baseline.json"
        assert (
            run_lint(
                str(violation_tree / "repro"),
                "--update-baseline",
                "--baseline",
                str(baseline),
                "--no-cache",
                "--paper",
                str(violation_tree / "PAPER.md"),
            )
            == 0
        )
        assert baseline.is_file()
        capsys.readouterr()
        code = run_lint(
            str(violation_tree / "repro"),
            "--baseline",
            str(baseline),
            "--format=json",
            "--no-cache",
            "--paper",
            str(violation_tree / "PAPER.md"),
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["baselined"] == len(VIOLATIONS)


class TestEntryPoints:
    def test_repro_lint_subcommand(self, violation_tree, capsys):
        code = repro_main(
            [
                "lint",
                str(violation_tree / "repro"),
                "--format=json",
                "--no-cache",
                "--paper",
                str(violation_tree / "PAPER.md"),
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in payload["findings"]} == {
            rule.name for rule in ALL_RULES
        }

    def test_module_invocation(self, violation_tree):
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.analysis",
                str(violation_tree / "repro"),
                "--no-cache",
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 1
        assert "error[" in result.stdout

    def test_list_rules(self, capsys):
        assert run_lint("--list-rules") == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.code in out

    def test_explain_prints_rationale_and_examples(self, capsys):
        assert run_lint("--explain", "DOM203") == 0
        out = capsys.readouterr().out
        assert "wal-fsync-before-ack" in out
        assert "Why:" in out
        assert "Invariant:" in out
        assert "Violating:" in out
        assert "Compliant:" in out
        assert "domlint: ignore[wal-fsync-before-ack]" in out

    def test_explain_accepts_rule_names_for_every_rule(self, capsys):
        for rule in ALL_RULES:
            assert run_lint("--explain", rule.name) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.code in out

    def test_explain_unknown_rule_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            run_lint("--explain", "DOM999")
        assert excinfo.value.code == 2


@pytest.mark.skipif(
    shutil.which("mypy") is None, reason="mypy not installed (runs in CI)"
)
class TestTypingGate:
    def test_mypy_strict_passes_on_src_repro(self):
        result = subprocess.run(
            ["mypy", "--strict", "src/repro"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr
