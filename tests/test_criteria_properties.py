"""Property-based verification of Table 1 (correct / sound flags).

Every test here validates a criterion against the *numerical oracle*
(:mod:`repro.core.oracle`), never against Hyperbola itself, so the suite
cannot circularly certify the main contribution.  Configurations whose
true margin is within numerical tolerance of the decision boundary are
skipped — no floating-point method can decide those consistently.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
import hypothesis.strategies as st

from repro.core import find_witness, get_criterion, min_margin
from repro.geometry.hypersphere import Hypersphere

from conftest import sphere_triples

BOUNDARY_TOLERANCE = 1e-6
CORRECT_CRITERIA = ("hyperbola", "minmax", "mbr", "gp")
SOUND_CRITERIA = ("hyperbola", "trigonometric")


def true_dominance(sa, sb, sq) -> bool | None:
    """Oracle verdict, or None when the margin is too close to call."""
    margin = min_margin(sa, sb, sq, resolution=1024) - (sa.radius + sb.radius)
    if abs(margin) <= BOUNDARY_TOLERANCE:
        return None
    return (not sa.overlaps(sb)) and margin > 0.0


@st.composite
def biased_triples(draw):
    """Triples biased toward the interesting (dominance-plausible) regime."""
    d = draw(st.integers(min_value=1, max_value=6))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31)))
    ra = float(abs(rng.normal(0.0, 1.5)))
    rb = float(abs(rng.normal(0.0, 1.5)))
    rq = float(abs(rng.normal(0.0, 2.0)))
    ca = rng.normal(0.0, 8.0, d)
    direction = rng.normal(0.0, 1.0, d)
    direction /= np.linalg.norm(direction)
    cb = ca + direction * (ra + rb + float(rng.uniform(0.05, 10.0)))
    cq = ca - direction * float(rng.uniform(0.0, 8.0)) + rng.normal(0.0, 2.0, d)
    return Hypersphere(ca, ra), Hypersphere(cb, rb), Hypersphere(cq, rq)


class TestHyperbolaOptimality:
    """Hyperbola must agree with the oracle in *both* directions."""

    @given(biased_triples())
    @settings(max_examples=120)
    def test_exactness_on_biased_workload(self, triple):
        sa, sb, sq = triple
        truth = true_dominance(sa, sb, sq)
        assume(truth is not None)
        assert get_criterion("hyperbola").dominates(sa, sb, sq) == truth

    @given(sphere_triples())
    def test_exactness_on_uniform_workload(self, triple):
        sa, sb, sq = triple
        truth = true_dominance(sa, sb, sq)
        assume(truth is not None)
        assert get_criterion("hyperbola").dominates(sa, sb, sq) == truth


class TestCorrectness:
    """Correct criteria may never produce a false positive."""

    @pytest.mark.parametrize("name", CORRECT_CRITERIA)
    def test_no_false_positive_randomised(self, name, rng):
        criterion = get_criterion(name)
        for _ in range(150):
            d = int(rng.integers(1, 7))
            sa = Hypersphere(rng.normal(0, 8, d), float(abs(rng.normal(0, 2))))
            sb = Hypersphere(rng.normal(0, 8, d), float(abs(rng.normal(0, 2))))
            sq = Hypersphere(rng.normal(0, 8, d), float(abs(rng.normal(0, 2))))
            if not criterion.dominates(sa, sb, sq):
                continue
            truth = true_dominance(sa, sb, sq)
            if truth is None:
                continue
            assert truth, f"{name} produced a false positive"

    @given(biased_triples())
    def test_claimed_dominance_has_no_witness(self, triple):
        """A positive answer from a correct criterion is refutation-free."""
        sa, sb, sq = triple
        for name in CORRECT_CRITERIA:
            if get_criterion(name).dominates(sa, sb, sq):
                witness = find_witness(sa, sb, sq)
                if witness is not None:
                    q, a, b = witness
                    # The "witness" must itself be borderline (numerics).
                    violation = np.linalg.norm(a - q) - np.linalg.norm(b - q)
                    assert violation <= BOUNDARY_TOLERANCE, name


class TestSoundness:
    """Sound criteria may never produce a false negative."""

    @pytest.mark.parametrize("name", SOUND_CRITERIA)
    @given(triple=biased_triples())
    def test_no_false_negative(self, name, triple):
        sa, sb, sq = triple
        criterion = get_criterion(name)
        if criterion.dominates(sa, sb, sq):
            return
        truth = true_dominance(sa, sb, sq)
        assume(truth is not None)
        assert not truth, f"{name} produced a false negative"


class TestPairwiseImplications:
    """Structural implications between the criteria."""

    @given(biased_triples())
    def test_correct_criterion_implies_hyperbola(self, triple):
        """Any correct criterion's True must be Hyperbola's True."""
        sa, sb, sq = triple
        hyperbola = get_criterion("hyperbola").dominates(sa, sb, sq)
        for name in ("minmax", "mbr", "gp"):
            if get_criterion(name).dominates(sa, sb, sq):
                assert hyperbola, f"{name} true but hyperbola false"

    @given(biased_triples())
    def test_hyperbola_implies_sound_criteria(self, triple):
        """Hyperbola's True must be accepted by every sound criterion."""
        sa, sb, sq = triple
        if get_criterion("hyperbola").dominates(sa, sb, sq):
            assert get_criterion("trigonometric").dominates(sa, sb, sq)

    def test_minmax_sound_for_point_queries(self, rng):
        """The paper: MinMax is sound when Sq is a point."""
        minmax = get_criterion("minmax")
        hyperbola = get_criterion("hyperbola")
        for _ in range(300):
            d = int(rng.integers(1, 6))
            sa = Hypersphere(rng.normal(0, 5, d), float(abs(rng.normal(0, 1))))
            sb = Hypersphere(rng.normal(0, 5, d), float(abs(rng.normal(0, 1))))
            sq = Hypersphere(rng.normal(0, 5, d), 0.0)
            if hyperbola.dominates(sa, sb, sq):
                assert minmax.dominates(sa, sb, sq)
