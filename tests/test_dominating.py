"""Tests for the top-k dominating query (extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import get_criterion
from repro.exceptions import QueryError
from repro.geometry.hypersphere import Hypersphere
from repro.queries.dominating import dominance_scores, top_k_dominating


def line_dataset():
    """Objects marching away from the query along one axis."""
    return [
        (i, Hypersphere([float(5 * i), 0.0], 0.2)) for i in range(6)
    ]


class TestScores:
    def test_scores_match_pairwise_criterion(self, rng):
        data = [
            (
                i,
                Hypersphere(
                    rng.normal(0.0, 5.0, 2), float(abs(rng.normal(0.0, 0.5)))
                ),
            )
            for i in range(25)
        ]
        query = Hypersphere([0.0, 0.0], 0.5)
        criterion = get_criterion("hyperbola")
        scores = dominance_scores(data, query)
        for i, (key, sphere) in enumerate(data):
            expected = sum(
                criterion.dominates(sphere, other, query)
                for j, (_, other) in enumerate(data)
                if j != i
            )
            assert scores[i].key == key
            assert scores[i].score == expected

    def test_line_ordering(self):
        # Nearer objects dominate all farther ones with respect to a
        # query at the origin.
        query = Hypersphere([0.0, 0.0], 0.2)
        scores = dominance_scores(line_dataset(), query)
        values = [s.score for s in scores]
        assert values == sorted(values, reverse=True)
        assert values[0] == 5  # the closest object dominates all others
        assert values[-1] == 0

    def test_unsound_criterion_gives_lower_bounds(self, rng):
        data = [
            (
                i,
                Hypersphere(
                    rng.normal(0.0, 5.0, 3), float(abs(rng.normal(0.0, 0.5)))
                ),
            )
            for i in range(30)
        ]
        query = Hypersphere(rng.normal(0.0, 5.0, 3), 0.5)
        exact = dominance_scores(data, query, criterion="hyperbola")
        loose = dominance_scores(data, query, criterion="minmax")
        for e, l in zip(exact, loose):
            assert l.score <= e.score

    def test_dimension_mismatch(self):
        with pytest.raises(QueryError):
            dominance_scores(line_dataset(), Hypersphere([0.0], 0.1))


class TestTopK:
    def test_top_k_returns_best(self):
        query = Hypersphere([0.0, 0.0], 0.2)
        top = top_k_dominating(line_dataset(), query, 2)
        assert [entry.key for entry in top] == [0, 1]
        assert top[0].score >= top[1].score

    def test_invalid_k(self):
        query = Hypersphere([0.0, 0.0], 0.2)
        with pytest.raises(QueryError):
            top_k_dominating(line_dataset(), query, 0)
        with pytest.raises(QueryError):
            top_k_dominating(line_dataset(), query, 7)

    def test_tie_break_by_dataset_order(self):
        # Two coincident best objects: stable order wins.
        data = [
            ("first", Hypersphere([0.0, 0.0], 0.1)),
            ("second", Hypersphere([0.0, 0.0], 0.1)),
            ("far", Hypersphere([50.0, 0.0], 0.1)),
        ]
        query = Hypersphere([0.0, 0.0], 0.1)
        top = top_k_dominating(data, query, 2)
        assert [entry.key for entry in top] == ["first", "second"]
