"""Deadline-aware execution: budgets, partial results, degradation.

Three layers under test:

- :class:`repro.resilience.Budget` mechanics — quotas, deadlines, the
  sticky exhaustion reason, the guarded clock, contextvar scoping;
- the :class:`repro.resilience.PartialResult` envelope and its
  attribute forwarding (experiment code written against the raw answer
  must keep working when a budget is activated around it);
- budgeted behaviour of the three query families (kNN, RkNN, top-k
  dominating) and the ladder's escalation seam: a generous budget
  reproduces the clean answer and stays unflagged, a tiny one returns
  a flagged conservative partial answer — never an exception.

The input-validation regression tests for the query entry points
(satellite of the resilience PR) live at the bottom.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import VerifiedHyperbola
from repro.data.synthetic import synthetic_dataset
from repro.data.workload import knn_queries
from repro.exceptions import QueryError, ValidationError
from repro.geometry.hypersphere import Hypersphere
from repro.index.linear import LinearIndex
from repro.index.sstree import SSTree
from repro.queries.dominating import dominance_scores, top_k_dominating
from repro.queries.knn import knn_query, knn_reference
from repro.queries.rknn import rnn_candidates
from repro.resilience import (
    Budget,
    GuaranteeTier,
    PartialResult,
    ResilienceReport,
    current,
    scope,
)
from repro.robust import Verdict, decide, exact_dominates, faults
from repro.robust.ladder import DEFAULT_LADDER

GENEROUS = dict(max_candidates=10**9, max_escalations=10**9, deadline_s=3600.0)


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset(250, 3, mu=0.1, seed=11)


@pytest.fixture(scope="module")
def tree(dataset):
    return SSTree.bulk_load(dataset.items(), max_entries=16)


@pytest.fixture(scope="module")
def queries(dataset):
    return list(knn_queries(dataset, count=4, seed=5))


class TestBudgetMechanics:
    def test_constructor_rejects_bad_limits(self):
        with pytest.raises(ValidationError):
            Budget(deadline_s=-1.0)
        with pytest.raises(ValidationError):
            Budget(deadline_s=float("nan"))
        with pytest.raises(ValidationError):
            Budget(deadline_s=float("inf"))
        with pytest.raises(ValidationError):
            Budget(max_candidates=-1)
        with pytest.raises(ValidationError):
            Budget(max_escalations=-5)

    def test_candidate_quota_and_sticky_exhaustion(self):
        budget = Budget(max_candidates=2).start()
        assert budget.charge_candidate() is None
        assert budget.charge_candidate() is None
        assert budget.charge_candidate() == "candidates"
        # Sticky: every later charge, of any kind, reports the same
        # reason without re-deciding.
        assert budget.charge_node() == "candidates"
        assert budget.charge_escalation() == "candidates"
        assert budget.exhausted() == "candidates"
        assert budget.candidates_charged == 3

    def test_bulk_candidate_charge(self):
        budget = Budget(max_candidates=10).start()
        assert budget.charge_candidate(10) is None
        assert budget.charge_candidate(1) == "candidates"

    def test_escalation_quota(self):
        budget = Budget(max_escalations=1).start()
        assert budget.charge_escalation() is None
        assert budget.charge_escalation() == "escalations"
        assert budget.escalations_charged == 2

    def test_zero_deadline_exhausts_on_first_node(self):
        budget = Budget(deadline_s=0.0).start()
        assert budget.charge_node() == "deadline"
        assert budget.exhausted() == "deadline"

    def test_distant_deadline_does_not_exhaust(self):
        budget = Budget(deadline_s=3600.0).start()
        assert budget.charge_node() is None
        assert all(budget.charge_candidate() is None for _ in range(100))
        assert budget.exhausted() is None

    def test_candidate_charges_probe_deadline_on_a_stride(self):
        # A zero deadline only surfaces when the stride-gated probe
        # actually reads the clock; the charges before it are free.
        from repro.resilience.budget import _PROBE_STRIDE

        budget = Budget(deadline_s=0.0).start()
        results = [budget.charge_candidate() for _ in range(_PROBE_STRIDE)]
        assert results[:-1] == [None] * (_PROBE_STRIDE - 1)
        assert results[-1] == "deadline"

    def test_start_is_idempotent(self):
        budget = Budget(deadline_s=3600.0)
        assert not budget.started
        first = budget._deadline_at is None
        budget.start()
        anchored = budget._deadline_at
        budget.start()
        assert first and budget.started
        assert budget._deadline_at == anchored

    def test_no_deadline_budget_counts_as_started(self):
        assert Budget(max_candidates=1).started

    def test_from_deadline_ms(self):
        assert Budget.from_deadline_ms(250.0).deadline_s == 0.25

    def test_unlimited_budget_never_exhausts(self):
        budget = Budget().start()
        assert budget.charge_node() is None
        assert budget.charge_candidate(10**6) is None
        assert budget.charge_escalation() is None

    def test_repr_names_limits_and_reason(self):
        budget = Budget(deadline_s=1.0, max_candidates=3)
        text = repr(budget)
        assert "deadline_s=1" in text and "max_candidates=3" in text
        budget.start()
        while budget.charge_candidate() is None:
            pass
        assert "exhausted='candidates'" in repr(budget)

    @pytest.mark.parametrize("mode", ("nan", "overflow", "raise"))
    def test_broken_clock_degrades_conservatively(self, mode):
        # A clock the budget cannot read collapses to "exhausted", the
        # conservative direction — it never silently disarms a deadline.
        with faults.inject("clock", mode):
            budget = Budget(deadline_s=3600.0)
            budget.start()
            assert budget.charge_node() == "clock"
            assert budget.exhausted() == "clock"

    def test_clock_restored_after_injection(self):
        import time

        from repro.resilience import budget as budget_mod

        with faults.inject("clock", "nan"):
            pass
        assert budget_mod._monotonic is time.monotonic


class TestScope:
    def test_default_is_unbudgeted(self):
        assert current() is None

    def test_scope_activates_and_restores(self):
        budget = Budget(max_candidates=5)
        with scope(budget) as active:
            assert active is budget
            assert current() is budget
        assert current() is None

    def test_nested_scopes_stack(self):
        outer, inner = Budget(), Budget()
        with scope(outer):
            with scope(inner):
                assert current() is inner
            assert current() is outer

    def test_scope_none_shields_from_outer_budget(self):
        with scope(Budget(max_candidates=1)):
            with scope(None):
                assert current() is None

    def test_scope_anchors_the_deadline(self):
        budget = Budget(deadline_s=3600.0)
        with scope(budget):
            assert budget.started

    def test_threads_do_not_inherit_the_budget(self):
        seen = []
        with scope(Budget(max_candidates=1)):
            thread = threading.Thread(target=lambda: seen.append(current()))
            thread.start()
            thread.join()
        assert seen == [None]


class TestPartialResult:
    def test_fresh_report_is_undegraded(self):
        report = ResilienceReport()
        assert report.complete
        assert report.tier is GuaranteeTier.OPTIMAL
        assert not report.degraded

    def test_mark_incomplete_first_reason_wins(self):
        report = ResilienceReport()
        report.mark_incomplete("deadline")
        report.mark_incomplete("candidates")
        assert not report.complete
        assert report.exhausted == "deadline"
        assert report.tier is GuaranteeTier.CONSERVATIVE
        assert report.degraded

    def test_mark_conservative_dedupes_notes(self):
        report = ResilienceReport()
        report.mark_conservative("fell back")
        report.mark_conservative("fell back")
        assert report.notes == ["fell back"]
        assert report.degraded

    def test_absorbed_faults_count_as_degradation(self):
        report = ResilienceReport()
        report.absorbed_faults = 1
        assert report.degraded

    def test_to_dict_round_trip_fields(self):
        report = ResilienceReport()
        report.mark_incomplete("candidates")
        payload = report.to_dict()
        assert payload["complete"] is False
        assert payload["tier"] == "conservative"
        assert payload["exhausted"] == "candidates"
        assert payload["degraded"] is True

    def test_forwards_to_the_wrapped_value(self):
        wrapped = PartialResult([3, 1, 4], ResilienceReport())
        assert len(wrapped) == 3
        assert list(wrapped) == [3, 1, 4]
        assert 4 in wrapped and 9 not in wrapped
        assert wrapped.value == [3, 1, 4]
        assert wrapped.complete and not wrapped.degraded
        assert wrapped.tier is GuaranteeTier.OPTIMAL

    def test_forwards_attributes_but_own_fields_win(self):
        class Answer:
            keys = ["a"]
            report = "shadowed"

        report = ResilienceReport()
        wrapped = PartialResult(Answer(), report)
        assert wrapped.keys == ["a"]
        assert wrapped.report is report
        with pytest.raises(AttributeError):
            wrapped.nonexistent


class TestBudgetedKNN:
    @pytest.mark.parametrize("algorithm", ("incremental", "two-phase"))
    def test_generous_budget_reproduces_the_clean_answer(
        self, tree, queries, algorithm
    ):
        for query in queries:
            clean = knn_query(tree, query, 10, algorithm=algorithm)
            with scope(Budget(**GENEROUS)):
                budgeted = knn_query(tree, query, 10, algorithm=algorithm)
            assert isinstance(budgeted, PartialResult)
            assert budgeted.complete and not budgeted.degraded
            assert budgeted.key_set() == clean.key_set()
            assert budgeted.distk == clean.distk

    def test_unbudgeted_query_returns_a_plain_result(self, tree, queries):
        result = knn_query(tree, queries[0], 5)
        assert not isinstance(result, PartialResult)

    def test_candidate_quota_yields_flagged_partial(self, tree, queries):
        with scope(Budget(max_candidates=10)):
            result = knn_query(tree, queries[0], 10)
        assert isinstance(result, PartialResult)
        assert not result.complete
        assert result.report.exhausted == "candidates"
        assert result.tier is GuaranteeTier.CONSERVATIVE

    def test_zero_deadline_yields_flagged_partial(self, tree, queries):
        with scope(Budget(deadline_s=0.0)):
            result = knn_query(tree, queries[0], 10)
        assert isinstance(result, PartialResult)
        assert not result.complete
        assert result.report.exhausted == "deadline"

    @pytest.mark.parametrize("strategy", ("hs", "df"))
    def test_both_traversals_respect_the_budget(self, tree, queries, strategy):
        with scope(Budget(max_candidates=10)):
            result = knn_query(tree, queries[0], 10, strategy=strategy)
        assert isinstance(result, PartialResult)
        assert not result.complete

    def test_linear_scan_respects_the_budget(self, dataset, queries):
        index = LinearIndex(dataset.items())
        with scope(Budget(max_candidates=10)):
            result = knn_query(index, queries[0], 10)
        assert isinstance(result, PartialResult)
        assert not result.complete

    def test_two_phase_budget_cut_skips_the_dominance_filter(
        self, dataset, queries
    ):
        # A phase-1 cut makes the anchors untrustworthy; the filter is
        # skipped (degraded, answers kept) rather than applied unsoundly.
        index = LinearIndex(dataset.items())
        clean = knn_query(index, queries[0], 10, algorithm="two-phase")
        with scope(Budget(max_candidates=len(index) // 2)):
            result = knn_query(index, queries[0], 10, algorithm="two-phase")
        assert isinstance(result, PartialResult)
        assert not result.complete
        assert result.tier is GuaranteeTier.CONSERVATIVE
        assert result.degraded_checks > 0
        # Skipping the filter keeps candidates: a superset, never a cut.
        assert clean.key_set() <= result.key_set()

    def test_partial_result_forwards_knn_attributes(self, tree, queries):
        with scope(Budget(max_candidates=10)):
            result = knn_query(tree, queries[0], 10)
        # Call sites written against KNNResult keep working unchanged.
        assert result.key_set() == set(result.keys)
        assert len(result) == len(result.value.keys)
        assert result.nodes_visited >= 0

    def test_budget_is_shared_across_queries_in_one_scope(self, tree, queries):
        with scope(Budget(max_candidates=10)) as budget:
            knn_query(tree, queries[0], 5)
            second = knn_query(tree, queries[1], 5)
        assert budget.exhausted() == "candidates"
        assert not second.complete

    def test_reference_is_budget_blind(self, dataset, queries):
        clean = knn_reference(dataset.items(), queries[0], 10)
        with scope(Budget(max_candidates=1)):
            budgeted = knn_reference(dataset.items(), queries[0], 10)
        assert budgeted.key_set() == clean.key_set()
        assert not isinstance(budgeted, PartialResult)


class TestBudgetedRNN:
    @pytest.fixture(scope="class")
    def small(self):
        return list(synthetic_dataset(80, 2, mu=0.2, seed=3).items())

    @pytest.fixture(scope="class")
    def query(self):
        return Hypersphere([0.3, -0.2], 0.1)

    def test_generous_budget_reproduces_the_clean_answer(self, small, query):
        clean = rnn_candidates(small, query)
        with scope(Budget(**GENEROUS)):
            budgeted = rnn_candidates(small, query)
        assert isinstance(budgeted, PartialResult)
        assert budgeted.complete and not budgeted.degraded
        assert list(budgeted) == clean

    def test_exhausted_budget_keeps_unexamined_objects(self, small, query):
        clean = rnn_candidates(small, query)
        with scope(Budget(max_candidates=15)):
            budgeted = rnn_candidates(small, query)
        assert isinstance(budgeted, PartialResult)
        assert not budgeted.complete
        assert budgeted.report.exhausted == "candidates"
        # Refute-only degradation: the candidate set only ever widens.
        assert set(clean) <= set(budgeted)

    def test_unbudgeted_returns_a_plain_list(self, small, query):
        assert isinstance(rnn_candidates(small, query), list)


class TestBudgetedDominating:
    @pytest.fixture(scope="class")
    def small(self):
        return list(synthetic_dataset(60, 2, mu=0.3, seed=9).items())

    @pytest.fixture(scope="class")
    def query(self):
        return Hypersphere([0.0, 0.0], 0.2)

    def test_generous_budget_reproduces_the_clean_scores(self, small, query):
        clean = dominance_scores(small, query)
        with scope(Budget(**GENEROUS)):
            budgeted = dominance_scores(small, query)
        assert isinstance(budgeted, PartialResult)
        assert budgeted.complete and not budgeted.degraded
        assert list(budgeted) == clean

    def test_exhausted_budget_zero_scores_the_remaining_rows(self, small, query):
        with scope(Budget(max_candidates=10 * len(small))):
            budgeted = dominance_scores(small, query)
        assert isinstance(budgeted, PartialResult)
        assert not budgeted.complete
        # Every key still appears, late rows at the universal lower bound.
        assert len(budgeted) == len(small)
        assert all(score.score == 0 for score in list(budgeted)[11:])

    def test_top_k_under_budget_carries_the_scoring_report(self, small, query):
        with scope(Budget(max_candidates=10 * len(small))):
            top = top_k_dominating(small, query, 5)
        assert isinstance(top, PartialResult)
        assert len(top) == 5
        assert not top.complete

    def test_top_k_generous_budget_matches_clean(self, small, query):
        clean = top_k_dominating(small, query, 5)
        with scope(Budget(**GENEROUS)):
            budgeted = top_k_dominating(small, query, 5)
        assert list(budgeted) == clean


class TestLadderEscalationSeam:
    def _quartic_bound_triples(self, count=60):
        rng = np.random.default_rng(7)
        for _ in range(count):
            yield (
                Hypersphere(rng.normal(size=3) * 3.0, rng.uniform(0.1, 1.0)),
                Hypersphere(rng.normal(size=3) * 3.0, rng.uniform(0.1, 1.0)),
                Hypersphere(rng.normal(size=3) * 3.0, rng.uniform(0.1, 1.0)),
            )

    def test_denied_escalation_collapses_to_uncertain(self):
        # With every float stage blown up, only the exact arbiter can
        # certify — and reaching it is an escalation the budget denies.
        denied = 0
        with faults.inject("quartic", "raise"):
            for triple in self._quartic_bound_triples():
                free = decide(*triple)
                with scope(Budget(max_escalations=0)):
                    capped = decide(*triple)
                if free.verdict is Verdict.UNCERTAIN:
                    continue  # settled by a stage the fault cannot reach
                if capped.verdict is Verdict.UNCERTAIN:
                    denied += 1
                    # The unbudgeted climb still reaches the truth.
                    assert (free.verdict is Verdict.TRUE) == exact_dominates(
                        *triple
                    )
        assert denied > 0

    def test_generous_escalation_budget_certifies(self):
        with faults.inject("quartic", "raise"):
            for triple in self._quartic_bound_triples(20):
                with scope(Budget(max_escalations=len(DEFAULT_LADDER))):
                    capped = decide(*triple)
                assert capped.verdict is not Verdict.UNCERTAIN

    def test_verified_criterion_counts_denied_escalations(self):
        criterion = VerifiedHyperbola()
        with faults.inject("quartic", "raise"):
            with scope(Budget(max_escalations=0)):
                for triple in self._quartic_bound_triples(30):
                    criterion.dominates(*triple)
        assert criterion.uncertain_count > 0


class TestQueryValidation:
    """Regression tests for the entry-point validation satellite."""

    @pytest.fixture(scope="class")
    def small_tree(self):
        return SSTree.bulk_load(
            synthetic_dataset(40, 2, seed=1).items(), max_entries=8
        )

    @pytest.fixture(scope="class")
    def query(self):
        return Hypersphere([0.0, 0.0], 0.1)

    @pytest.mark.parametrize("bad_k", (True, False, 2.5, "3", None))
    def test_non_integer_k_rejected(self, small_tree, query, bad_k):
        with pytest.raises(ValidationError, match="k"):
            knn_query(small_tree, query, bad_k)

    @pytest.mark.parametrize("bad_k", (0, -1, 41, 10**9))
    def test_out_of_range_k_rejected(self, small_tree, query, bad_k):
        with pytest.raises(ValidationError):
            knn_query(small_tree, query, bad_k)

    def test_numpy_integer_k_accepted(self, small_tree, query):
        result = knn_query(small_tree, query, np.int64(3))
        assert result.distk >= 0.0

    def test_dimension_mismatch_rejected(self, small_tree):
        with pytest.raises(ValidationError):
            knn_query(small_tree, Hypersphere([0.0, 0.0, 0.0], 0.1), 3)

    def test_poisoned_radius_rejected(self, small_tree):
        bad = Hypersphere([0.0, 0.0], 0.1)
        object.__setattr__(bad, "_radius", float("inf"))
        with pytest.raises(ValidationError, match="radius"):
            knn_query(small_tree, bad, 3)
        object.__setattr__(bad, "_radius", float("nan"))
        with pytest.raises(ValidationError, match="radius"):
            knn_query(small_tree, bad, 3)
        object.__setattr__(bad, "_radius", -0.5)
        with pytest.raises(ValidationError, match="radius"):
            knn_query(small_tree, bad, 3)

    def test_poisoned_center_rejected(self, small_tree):
        bad = Hypersphere([0.0, 0.0], 0.1)
        poisoned = np.array([np.nan, 0.0])
        object.__setattr__(bad, "_center", poisoned)
        with pytest.raises(ValidationError, match="center"):
            knn_query(small_tree, bad, 3)

    def test_non_hypersphere_query_rejected(self, small_tree):
        with pytest.raises(ValidationError):
            knn_query(small_tree, (0.0, 0.0), 3)

    def test_validation_error_is_a_query_error(self, small_tree, query):
        # Call sites catching the historical QueryError keep working.
        assert issubclass(ValidationError, QueryError)
        with pytest.raises(QueryError):
            knn_query(small_tree, query, 0)

    def test_reference_validates_too(self):
        items = list(synthetic_dataset(20, 2, seed=2).items())
        with pytest.raises(ValidationError):
            knn_reference(items, Hypersphere([0.0, 0.0], 0.1), 0)
        with pytest.raises(ValidationError):
            knn_reference(items, Hypersphere([0.0], 0.1), 3)

    def test_rnn_validates_the_query(self):
        items = list(synthetic_dataset(20, 2, seed=2).items())
        with pytest.raises(ValidationError):
            rnn_candidates(items, Hypersphere([0.0], 0.1))

    def test_dominating_validates_query_and_k(self):
        items = list(synthetic_dataset(20, 2, seed=2).items())
        with pytest.raises(ValidationError):
            dominance_scores(items, Hypersphere([0.0], 0.1))
        with pytest.raises(ValidationError):
            top_k_dominating(items, Hypersphere([0.0, 0.0], 0.1), 0)
        with pytest.raises(ValidationError):
            top_k_dominating(items, Hypersphere([0.0, 0.0], 0.1), 21)
