"""Delta-overlay semantics and mutation-payload validation.

The overlay is the single definition of what the merged streaming
dataset *means*: ``fold`` is consumed by the query merge, the
compaction, and the property-test oracle alike, so its semantics are
pinned here directly.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.geometry.hypersphere import Hypersphere
from repro.queries.validation import validate_mutation
from repro.stream.overlay import DeltaOverlay
from repro.stream.wal import Mutation


def sphere(x: float = 1.0, radius: float = 0.5) -> Hypersphere:
    return Hypersphere([x, 2.0, 3.0], radius)


BASE = [("a", sphere(0.0)), ("b", sphere(1.0)), ("c", sphere(2.0))]


class TestOverlaySemantics:
    def test_insert_shadows_base_copy(self):
        overlay = DeltaOverlay()
        overlay.insert("b", sphere(9.0))
        assert overlay.shadowed_keys() == {"b"}
        folded = dict(overlay.fold(BASE))
        assert folded["b"] == sphere(9.0)
        assert set(folded) == {"a", "b", "c"}

    def test_delete_tombstones_and_fold_drops(self):
        overlay = DeltaOverlay()
        overlay.delete("a")
        assert overlay.tombstones == {"a"}
        assert set(dict(overlay.fold(BASE))) == {"b", "c"}
        assert len(overlay) == 0 and bool(overlay)

    def test_delete_then_reinsert_resurrects(self):
        overlay = DeltaOverlay()
        overlay.delete("a")
        overlay.insert("a", sphere(7.0))
        assert overlay.tombstones == frozenset()
        assert dict(overlay.fold(BASE))["a"] == sphere(7.0)

    def test_insert_then_delete_is_a_tombstone(self):
        overlay = DeltaOverlay()
        overlay.insert("z", sphere(5.0))
        overlay.delete("z")
        assert len(overlay) == 0
        assert "z" not in dict(overlay.fold(BASE))

    def test_apply_replay_is_idempotent(self):
        mutations = [
            Mutation.insert("x", sphere(4.0), seq=1),
            Mutation.delete("a", seq=2),
            Mutation.insert("x", sphere(6.0), seq=3),
        ]
        once, twice = DeltaOverlay(), DeltaOverlay()
        for m in mutations:
            once.apply(m)
        for m in mutations + mutations:
            twice.apply(m)
        assert once.fold(BASE) == twice.fold(BASE)

    def test_snapshot_isolated_from_later_mutations(self):
        overlay = DeltaOverlay()
        overlay.insert("x", sphere(4.0))
        frozen = overlay.snapshot()
        overlay.delete("x")
        overlay.delete("a")
        assert dict(frozen.fold(BASE)).keys() == {"a", "b", "c", "x"}
        assert dict(overlay.fold(BASE)).keys() == {"b", "c"}

    def test_fold_of_empty_overlay_is_the_base(self):
        assert DeltaOverlay().fold(BASE) == BASE

    def test_clear_resets_everything(self):
        overlay = DeltaOverlay()
        overlay.insert("x", sphere())
        overlay.delete("a")
        overlay.clear()
        assert not overlay and overlay.fold(BASE) == BASE


class TestValidateMutation:
    def test_valid_insert(self):
        op, key, s = validate_mutation(
            {"op": "insert", "key": 7, "center": [1.0, 2.0, 3.0],
             "radius": 0.5},
            3,
        )
        assert (op, key) == ("insert", 7)
        assert s == sphere(1.0)

    def test_valid_delete(self):
        op, key, s = validate_mutation({"op": "delete", "key": "gone"})
        assert (op, key, s) == ("delete", "gone", None)

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            {},
            {"op": "upsert", "key": 1},
            {"op": "insert", "center": [1.0], "radius": 1.0},
            {"op": "insert", "key": {"a": 1}, "center": [1.0], "radius": 1.0},
            {"op": "insert", "key": 1},
            {"op": "insert", "key": 1, "center": [], "radius": 1.0},
            {"op": "insert", "key": 1, "center": "xyz", "radius": 1.0},
            {"op": "insert", "key": 1, "center": [1.0, 2.0, 3.0]},
            {"op": "insert", "key": 1, "center": [1.0, 2.0, 3.0],
             "radius": True},
            {"op": "insert", "key": 1, "center": [1.0, 2.0, 3.0],
             "radius": -1.0},
            {"op": "insert", "key": 1, "center": [1.0, "x", 3.0],
             "radius": 1.0},
            {"op": "insert", "key": 1,
             "center": [float("nan"), 2.0, 3.0], "radius": 1.0},
            {"op": "delete", "key": 1, "center": [1.0, 2.0, 3.0]},
        ],
    )
    def test_malformed_payloads_are_typed_rejections(self, payload):
        with pytest.raises(ValidationError):
            validate_mutation(payload, 3)

    def test_dimension_mismatch(self):
        with pytest.raises(ValidationError, match="dimension"):
            validate_mutation(
                {"op": "insert", "key": 1, "center": [1.0, 2.0],
                 "radius": 0.5},
                3,
            )

    def test_dimension_unchecked_when_unknown(self):
        op, key, s = validate_mutation(
            {"op": "insert", "key": 1, "center": [1.0, 2.0], "radius": 0.5}
        )
        assert op == "insert" and s is not None and s.dimension == 2
