"""The paper's lemma constructions, as executable regression tests.

Each test builds the exact geometric configuration used in a proof from
the paper and checks that our implementations exhibit the behaviour the
lemma claims.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import get_criterion, min_margin, oracle_dominates
from repro.geometry.hypersphere import Hypersphere


class TestLemma1Overlap:
    """Overlapping Sa, Sb never dominate — for any query."""

    @pytest.mark.parametrize(
        "name", ("hyperbola", "minmax", "mbr", "gp")
    )
    def test_overlap_forces_false(self, name, rng):
        criterion = get_criterion(name)
        for _ in range(50):
            d = int(rng.integers(1, 5))
            ca = rng.normal(0, 5, d)
            ra = float(abs(rng.normal(0, 2))) + 0.1
            rb = float(abs(rng.normal(0, 2))) + 0.1
            # Place cb so the spheres overlap.
            direction = rng.normal(0, 1, d)
            direction /= np.linalg.norm(direction)
            cb = ca + direction * float(rng.uniform(0, ra + rb))
            sq = Hypersphere(rng.normal(0, 5, d), float(abs(rng.normal(0, 1))))
            assert not criterion.dominates(
                Hypersphere(ca, ra), Hypersphere(cb, rb), sq
            )


class TestLemma3MinMaxNotSound:
    """Figure 4: two points, a fat query above the bisector."""

    SA = Hypersphere([0.0, 2.0], 0.0)
    SB = Hypersphere([0.0, -2.0], 0.0)
    SQ = Hypersphere([0.0, 6.0], 3.0)

    def test_dominance_actually_holds(self):
        assert oracle_dominates(self.SA, self.SB, self.SQ)
        assert get_criterion("hyperbola").dominates(self.SA, self.SB, self.SQ)

    def test_minmax_misses_it(self):
        assert not get_criterion("minmax").dominates(self.SA, self.SB, self.SQ)

    def test_minmax_bounds_really_cross(self):
        from repro.geometry.distance import max_dist, min_dist

        assert max_dist(self.SA, self.SQ) > min_dist(self.SB, self.SQ)


class TestLemma5MBRNotSound:
    """Figure 5: three equal spheres on a diagonal; MBRs of Sa, Sb meet."""

    @staticmethod
    def build(r: float = 1.0, delta: float = 0.05):
        diag = np.array([1.0, 1.0]) / np.sqrt(2.0)
        sa = Hypersphere(diag * 4.0 * r, r)
        sb = Hypersphere(diag * (6.0 * r + delta), r)
        sq = Hypersphere([0.0, 0.0], r)
        return sa, sb, sq

    def test_dominance_actually_holds(self):
        sa, sb, sq = self.build()
        assert oracle_dominates(sa, sb, sq)
        assert get_criterion("hyperbola").dominates(sa, sb, sq)

    def test_mbrs_intersect(self):
        from repro.geometry.hyperrectangle import Hyperrectangle

        sa, sb, _ = self.build()
        assert Hyperrectangle.bounding(sa).intersects(Hyperrectangle.bounding(sb))
        assert not sa.overlaps(sb)

    def test_mbr_misses_it(self):
        sa, sb, sq = self.build()
        assert not get_criterion("mbr").dominates(sa, sb, sq)


class TestGPNotSound:
    """The d > 2 projection loses information and misses dominances."""

    def test_gp_misses_dominances_in_3d(self):
        # Random 3-D configurations in the dominance-plausible regime:
        # the projection must lose at least some of them (empirically it
        # loses most), while never inventing one.
        gp = get_criterion("gp")
        hyperbola = get_criterion("hyperbola")
        rng = np.random.default_rng(7)
        missed = invented = 0
        for _ in range(300):
            ca = rng.normal(0.0, 5.0, 3)
            ra = float(abs(rng.normal(0.0, 1.0)))
            rb = float(abs(rng.normal(0.0, 1.0)))
            direction = rng.normal(0.0, 1.0, 3)
            direction /= np.linalg.norm(direction)
            sa = Hypersphere(ca, ra)
            sb = Hypersphere(ca + direction * (ra + rb + 3.0), rb)
            sq = Hypersphere(
                ca - direction * 2.0 + rng.normal(0.0, 1.0, 3), 0.5
            )
            exact = hyperbola.dominates(sa, sb, sq)
            approx = gp.dominates(sa, sb, sq)
            if exact and not approx:
                missed += 1
            if approx and not exact:
                invented += 1
        assert invented == 0  # GP stays correct
        assert missed > 0  # ... but is demonstrably not sound

    def test_gp_equals_hyperbola_in_2d(self, rng):
        """GP is exact for d <= 2 (it delegates to the exact method)."""
        gp = get_criterion("gp")
        hyperbola = get_criterion("hyperbola")
        for _ in range(100):
            spheres = [
                Hypersphere(rng.normal(0, 8, 2), float(abs(rng.normal(0, 2))))
                for _ in range(3)
            ]
            assert gp.dominates(*spheres) == hyperbola.dominates(*spheres)


class TestTrigonometricNotCorrect:
    """Lemma 11 regime: both probes negative -> spurious 'true'."""

    def test_constructed_false_positive(self):
        sa = Hypersphere([10.0, 0.0], 0.5)
        sb = Hypersphere([0.0, 0.0], 0.5)
        sq = Hypersphere([0.0, 1.0], 0.3)
        assert not oracle_dominates(sa, sb, sq)
        assert get_criterion("trigonometric").dominates(sa, sb, sq)

    def test_found_false_positive_instance(self):
        """A randomly discovered robust false positive (margin < -6)."""
        sa = Hypersphere([19.6167067755246, 13.710839689613895], 1.4430)
        sb = Hypersphere([13.009185525356326, 13.768934611418802], 1.0507)
        sq = Hypersphere([7.778428479582075, 2.7019301004482243], 0.6205)
        margin = min_margin(sa, sb, sq) - (sa.radius + sb.radius)
        assert margin < -1.0  # decisively not a dominance
        assert get_criterion("trigonometric").dominates(sa, sb, sq)

    def test_paper_lemma11_numbers_are_not_dominance(self):
        """The sketch's numbers: genuinely not a dominance (our probe
        realisation detects the sign change, so it answers false)."""
        sa = Hypersphere([20.0, 8.0], 0.4)
        sb = Hypersphere([8.0, 10.0], 0.3)
        sq = Hypersphere([16.0, 16.0], 0.3)
        assert not oracle_dominates(sa, sb, sq)
        assert not get_criterion("trigonometric").dominates(sa, sb, sq)


class TestLemma10KNNCase:
    """Figure 7: distk >= MinDist(S, Sq) yet S is dominated."""

    def test_construction(self):
        # The sketch needs Dist(cq, ck) >> rq for the dominance to hold
        # against off-axis query realisations (the margin shrinks like
        # (rk + delta) * cos(theta) with theta up to ~ rq / L).
        rk, rq, r_s = 1.0, 2.0, 1e-6
        delta = 0.01
        ck = np.array([100.0, 0.0])
        cq = np.array([0.0, 0.0])
        c_s = ck + np.array([rk + delta, 0.0])
        sk = Hypersphere(ck, rk)
        sq = Hypersphere(cq, rq)
        s = Hypersphere(c_s, r_s)

        from repro.geometry.distance import max_dist, min_dist

        distk = max_dist(sk, sq)
        assert distk >= min_dist(s, sq)  # the traditional rule can't prune
        # ... yet Sk dominates S, so S is not a kNN answer:
        assert get_criterion("hyperbola").dominates(sk, s, sq)
        assert oracle_dominates(sk, s, sq)
