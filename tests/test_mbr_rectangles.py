"""Direct validation of the rectangle dominance decision (Emrich et al.).

The MBR criterion's core is ``rectangle_dominates``; it is re-derived in
this reproduction (per-dimension candidate maximisation, see
repro/core/mbr.py), so it gets its own ground-truth comparison: a dense
grid scan of the query box against the analytic box distances.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.core.mbr import rectangle_dominates
from repro.exceptions import DimensionalityMismatchError
from repro.geometry.hyperrectangle import Hyperrectangle

coordinate = st.floats(min_value=-20.0, max_value=20.0, allow_nan=False)
extent = st.floats(min_value=0.0, max_value=8.0, allow_nan=False)


@st.composite
def boxes(draw, dimension: int):
    lo = np.array(
        draw(st.lists(coordinate, min_size=dimension, max_size=dimension))
    )
    sizes = np.array(
        draw(st.lists(extent, min_size=dimension, max_size=dimension))
    )
    return Hyperrectangle(lo, lo + sizes)


def brute_force_dominates(
    ra: Hyperrectangle, rb: Hyperrectangle, rq: Hyperrectangle, steps: int = 9
) -> bool:
    """Grid scan over Rq: max over q of MaxDist(Ra,q)^2 - MinDist(Rb,q)^2.

    The per-dimension objective is piecewise linear/convex, so its max
    over the grid underestimates only between grid points; callers
    compare with a tolerance band around zero.
    """
    axes = [
        np.unique(
            np.concatenate(
                [
                    np.linspace(rq.lo[i], rq.hi[i], steps),
                    np.clip(
                        [
                            (ra.lo[i] + ra.hi[i]) / 2.0,
                            rb.lo[i],
                            rb.hi[i],
                        ],
                        rq.lo[i],
                        rq.hi[i],
                    ),
                ]
            )
        )
        for i in range(rq.dimension)
    ]
    worst = -np.inf
    for q in itertools.product(*axes):
        q = np.asarray(q)
        margin = ra.max_dist_point(q) ** 2 - rb.min_dist_point(q) ** 2
        worst = max(worst, margin)
    return worst < 0.0


class TestKnownConfigurations:
    def test_clear_dominance(self):
        ra = Hyperrectangle([0.0, 0.0], [1.0, 1.0])
        rb = Hyperrectangle([50.0, 0.0], [51.0, 1.0])
        rq = Hyperrectangle([-2.0, 0.0], [-1.0, 1.0])
        assert rectangle_dominates(ra, rb, rq)

    def test_clear_non_dominance(self):
        ra = Hyperrectangle([50.0, 0.0], [51.0, 1.0])
        rb = Hyperrectangle([0.0, 0.0], [1.0, 1.0])
        rq = Hyperrectangle([-2.0, 0.0], [-1.0, 1.0])
        assert not rectangle_dominates(ra, rb, rq)

    def test_intersecting_boxes_never_dominate(self):
        ra = Hyperrectangle([0.0, 0.0], [2.0, 2.0])
        rb = Hyperrectangle([1.0, 1.0], [3.0, 3.0])
        rq = Hyperrectangle([-9.0, -9.0], [-8.0, -8.0])
        assert not rectangle_dominates(ra, rb, rq)

    def test_fat_query_defeats_separation(self):
        # Same A/B as the clear case but a huge query box: some query
        # corner sees B closer than A's far corner.
        ra = Hyperrectangle([0.0, 0.0], [1.0, 1.0])
        rb = Hyperrectangle([6.0, 0.0], [7.0, 1.0])
        rq = Hyperrectangle([-50.0, -50.0], [50.0, 50.0])
        assert not rectangle_dominates(ra, rb, rq)

    def test_degenerate_point_boxes(self):
        point = lambda x, y: Hyperrectangle([x, y], [x, y])
        assert rectangle_dominates(point(0, 0), point(10, 0), point(-1, 0))
        assert not rectangle_dominates(point(10, 0), point(0, 0), point(-1, 0))

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionalityMismatchError):
            rectangle_dominates(
                Hyperrectangle([0.0], [1.0]),
                Hyperrectangle([0.0, 0.0], [1.0, 1.0]),
                Hyperrectangle([0.0], [1.0]),
            )


class TestAgainstBruteForce:
    @given(boxes(2), boxes(2), boxes(2))
    @settings(max_examples=80)
    def test_2d_agreement(self, ra, rb, rq):
        fast = rectangle_dominates(ra, rb, rq)
        brute = brute_force_dominates(ra, rb, rq)
        if fast != brute:
            # The only admissible disagreement is a margin so close to
            # zero that the grid's interpolation error flips the sign.
            worst = self._exact_margin(ra, rb, rq)
            assert abs(worst) < 1e-6
        # One direction is unconditional: the decision must never claim
        # dominance the grid refutes (grid max <= true max).
        if fast:
            assert brute

    @staticmethod
    def _exact_margin(ra, rb, rq) -> float:
        from repro.core.mbr import _max_margin_1d

        return sum(
            _max_margin_1d(
                ra.lo[i], ra.hi[i], rb.lo[i], rb.hi[i], rq.lo[i], rq.hi[i]
            )
            for i in range(ra.dimension)
        )

    @given(boxes(3), boxes(3), boxes(3))
    @settings(max_examples=30)
    def test_3d_no_false_positives(self, ra, rb, rq):
        if rectangle_dominates(ra, rb, rq):
            assert brute_force_dominates(ra, rb, rq, steps=5)

    @given(boxes(2), boxes(2), boxes(2))
    @settings(max_examples=50)
    def test_sampled_realisations_respect_the_decision(self, ra, rb, rq):
        """If the decision says true, every sampled (a, b, q) agrees."""
        if not rectangle_dominates(ra, rb, rq):
            return
        rng = np.random.default_rng(0)

        def sample(box, n):
            return rng.uniform(box.lo, box.hi, size=(n, box.dimension))

        qs, as_, bs = sample(rq, 12), sample(ra, 12), sample(rb, 12)
        for q in qs:
            for a in as_:
                for b in bs:
                    assert np.linalg.norm(a - q) < np.linalg.norm(b - q) + 1e-9
