"""Tests for the numerical ground-truth oracle itself.

The oracle validates the criteria, so it needs its own validation
against closed-form cases and against direct Monte-Carlo evaluation of
Definition 1.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given

from repro.core.oracle import find_witness, min_margin, oracle_dominates
from repro.geometry.hypersphere import Hypersphere

from conftest import sphere_triples


class TestMinMarginClosedForms:
    def test_point_query_on_axis(self):
        sa = Hypersphere([0.0, 0.0], 1.0)
        sb = Hypersphere([10.0, 0.0], 1.0)
        sq = Hypersphere([-3.0, 0.0], 0.0)
        # f(cq) = 13 - 3 = 10
        assert min_margin(sa, sb, sq) == pytest.approx(10.0)

    def test_axis_interval_left_of_both_foci(self):
        # The margin is the constant 2*alpha on the far-left plateau.
        sa = Hypersphere([0.0], 0.5)
        sb = Hypersphere([10.0], 0.5)
        sq = Hypersphere([-5.0], 2.0)
        assert min_margin(sa, sb, sq) == pytest.approx(10.0)

    def test_plateau_shortcut_beyond_cb(self):
        # Query ball swallowing the far plateau: margin = -2*alpha.
        sa = Hypersphere([0.0, 0.0], 0.5)
        sb = Hypersphere([4.0, 0.0], 0.5)
        sq = Hypersphere([6.0, 0.0], 3.0)
        assert min_margin(sa, sb, sq) == pytest.approx(-4.0)

    def test_coincident_centers_margin_zero(self):
        sa = Hypersphere([1.0, 1.0], 0.5)
        sb = Hypersphere([1.0, 1.0], 2.0)
        assert min_margin(sa, sb, Hypersphere([5.0, 5.0], 1.0)) == 0.0

    def test_2d_circle_case_against_dense_sampling(self, rng):
        sa = Hypersphere([0.0, 0.0], 1.0)
        sb = Hypersphere([8.0, 3.0], 0.5)
        sq = Hypersphere([2.0, 5.0], 2.0)
        expected = min(
            float(np.linalg.norm(sb.center - q) - np.linalg.norm(sa.center - q))
            for q in sq.sample(rng, 40_000)
        )
        got = min_margin(sa, sb, sq)
        # Sampling can only overestimate the true minimum.
        assert got <= expected + 1e-9
        assert got == pytest.approx(expected, abs=5e-3)

    @given(sphere_triples())
    def test_margin_bounded_by_plateaus(self, triple):
        sa, sb, sq = triple
        separation = float(np.linalg.norm(sb.center - sa.center))
        margin = min_margin(sa, sb, sq, resolution=512)
        assert -separation - 1e-9 <= margin <= separation + 1e-9

    @given(sphere_triples())
    def test_margin_monotone_in_query_radius(self, triple):
        """Growing Sq can only decrease (or keep) the minimum."""
        sa, sb, sq = triple
        grown = sq.with_radius(sq.radius + 1.0)
        assert min_margin(sa, sb, grown, resolution=512) <= min_margin(
            sa, sb, sq, resolution=512
        ) + 1e-6


class TestOracleDominates:
    def test_respects_overlap(self):
        sa = Hypersphere([0.0], 2.0)
        sb = Hypersphere([1.0], 2.0)
        assert not oracle_dominates(sa, sb, Hypersphere([-9.0], 0.1))

    def test_monte_carlo_agreement(self, rng):
        """Definition 1 by direct sampling, on decisive configurations."""
        checked = 0
        while checked < 25:
            d = int(rng.integers(1, 5))
            sa = Hypersphere(rng.normal(0, 5, d), float(abs(rng.normal(0, 1))))
            direction = rng.normal(0, 1, d)
            direction /= np.linalg.norm(direction)
            rb = float(abs(rng.normal(0, 1)))
            sb = Hypersphere(
                sa.center + direction * (sa.radius + rb + rng.uniform(0.5, 6)), rb
            )
            sq = Hypersphere(
                sa.center - direction * rng.uniform(0, 5), float(rng.uniform(0, 2))
            )
            margin = min_margin(sa, sb, sq) - sa.radius - sb.radius
            if abs(margin) < 0.05:
                continue  # only decisive cases: sampling cannot settle ties
            checked += 1
            verdict = oracle_dominates(sa, sb, sq)
            qs = sq.sample(rng, 400)
            as_ = sa.sample(rng, 40)
            bs = sb.sample(rng, 40)
            violated = any(
                np.linalg.norm(a - q) >= np.linalg.norm(b - q)
                for q in qs[:20]
                for a in as_[:20]
                for b in bs[:20]
            )
            if violated:
                assert not verdict
            # (no violation found does not prove dominance — skip that side)


class TestFindWitness:
    def test_witness_for_clear_non_dominance(self):
        sa = Hypersphere([10.0, 0.0], 1.0)  # far from query
        sb = Hypersphere([0.0, 0.0], 1.0)  # close to query
        sq = Hypersphere([-2.0, 0.0], 0.5)
        witness = find_witness(sa, sb, sq)
        assert witness is not None
        q, a, b = witness
        assert sq.contains(q)
        assert sa.contains(a, strict=False) or np.allclose(
            np.linalg.norm(a - sa.center), sa.radius
        )
        assert np.linalg.norm(a - q) >= np.linalg.norm(b - q)

    def test_no_witness_for_clear_dominance(self):
        sa = Hypersphere([0.0, 0.0], 1.0)
        sb = Hypersphere([100.0, 0.0], 1.0)
        sq = Hypersphere([-2.0, 0.0], 0.5)
        assert find_witness(sa, sb, sq) is None

    def test_witness_in_1d(self):
        sa = Hypersphere([10.0], 0.5)
        sb = Hypersphere([0.0], 0.5)
        sq = Hypersphere([-1.0], 0.5)
        witness = find_witness(sa, sb, sq)
        assert witness is not None

    def test_witness_with_coincident_centers(self):
        sa = Hypersphere([0.0, 0.0], 1.0)
        sb = Hypersphere([0.0, 0.0], 1.0)
        witness = find_witness(sa, sb, Hypersphere([3.0, 0.0], 0.5))
        assert witness is not None  # shared points are equidistant

    @given(sphere_triples())
    def test_witness_points_belong_to_their_spheres(self, triple):
        sa, sb, sq = triple
        witness = find_witness(sa, sb, sq, resolution=512)
        assume(witness is not None)
        q, a, b = witness
        tolerance = 1e-6 * (1.0 + sq.radius + float(np.linalg.norm(sq.center)))
        assert np.linalg.norm(q - sq.center) <= sq.radius + tolerance
        assert np.linalg.norm(a - sa.center) <= sa.radius + tolerance
        assert np.linalg.norm(b - sb.center) <= sb.radius + tolerance
        assert np.linalg.norm(a - q) >= np.linalg.norm(b - q) - tolerance
