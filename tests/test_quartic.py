"""Tests for the quartic solvers (Equation 14 machinery)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given
import hypothesis.strategies as st

from repro.geometry.quartic import (
    solve_quartic_real,
    solve_quartic_real_batch,
    solve_quartic_real_closed,
)

coefficients = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
roots_strategy = st.floats(
    min_value=-20.0, max_value=20.0, allow_nan=False, allow_infinity=False
)

SOLVERS = (solve_quartic_real, solve_quartic_real_closed)


def poly_from_roots(roots: list[float]) -> np.ndarray:
    """Monic coefficients (highest first, padded to length 5)."""
    coeffs = np.poly(roots)
    return np.concatenate([np.zeros(5 - coeffs.size), coeffs])


def assert_contains(found: np.ndarray, expected: list[float], tol: float = 1e-5):
    for root in expected:
        assert np.any(np.abs(found - root) <= tol * (1.0 + abs(root))), (
            f"root {root} missing from {found}"
        )


class TestKnownPolynomials:
    @pytest.mark.parametrize("solve", SOLVERS)
    def test_four_distinct_roots(self, solve):
        # (x-1)(x-2)(x-3)(x-4)
        found = solve(poly_from_roots([1.0, 2.0, 3.0, 4.0]))
        assert found.size == 4
        assert_contains(found, [1.0, 2.0, 3.0, 4.0])

    @pytest.mark.parametrize("solve", SOLVERS)
    def test_no_real_roots(self, solve):
        # (x^2+1)(x^2+4)
        assert solve([1.0, 0.0, 5.0, 0.0, 4.0]).size == 0

    @pytest.mark.parametrize("solve", SOLVERS)
    def test_two_real_two_complex(self, solve):
        # (x-1)(x+2)(x^2+1) = x^4 + x^3 - x^2 + x - 2
        found = solve([1.0, 1.0, -1.0, 1.0, -2.0])
        assert_contains(found, [1.0, -2.0])
        assert np.all((np.abs(found - 1.0) < 1e-4) | (np.abs(found + 2.0) < 1e-4))

    @pytest.mark.parametrize("solve", SOLVERS)
    def test_repeated_roots(self, solve):
        # (x-3)^2 (x+1)^2
        found = solve(poly_from_roots([3.0, 3.0, -1.0, -1.0]))
        assert_contains(found, [3.0, -1.0], tol=1e-3)

    @pytest.mark.parametrize("solve", SOLVERS)
    def test_biquadratic(self, solve):
        # x^4 - 5x^2 + 4 = (x^2-1)(x^2-4)
        found = solve([1.0, 0.0, -5.0, 0.0, 4.0])
        assert_contains(found, [-2.0, -1.0, 1.0, 2.0])

    @pytest.mark.parametrize("solve", SOLVERS)
    def test_degenerate_cubic(self, solve):
        # leading coefficient zero: x^3 - 6x^2 + 11x - 6
        found = solve([0.0, 1.0, -6.0, 11.0, -6.0])
        assert_contains(found, [1.0, 2.0, 3.0])

    @pytest.mark.parametrize("solve", SOLVERS)
    def test_degenerate_quadratic(self, solve):
        found = solve([0.0, 0.0, 1.0, -3.0, 2.0])
        assert_contains(found, [1.0, 2.0])

    @pytest.mark.parametrize("solve", SOLVERS)
    def test_degenerate_linear(self, solve):
        found = solve([0.0, 0.0, 0.0, 2.0, -8.0])
        assert_contains(found, [4.0])

    @pytest.mark.parametrize("solve", SOLVERS)
    def test_constant_returns_empty(self, solve):
        assert solve([0.0, 0.0, 0.0, 0.0, 5.0]).size == 0
        assert solve([0.0, 0.0, 0.0, 0.0, 0.0]).size == 0

    @pytest.mark.parametrize("solve", SOLVERS)
    def test_roots_sorted(self, solve):
        found = solve(poly_from_roots([4.0, -3.0, 0.5, 2.0]))
        assert np.all(np.diff(found) >= 0.0)

    @pytest.mark.parametrize("solve", SOLVERS)
    def test_bad_shape_rejected(self, solve):
        with pytest.raises(ValueError):
            solve([1.0, 2.0, 3.0])

    @pytest.mark.parametrize("solve", SOLVERS)
    def test_nan_rejected(self, solve):
        with pytest.raises(ValueError):
            solve([1.0, float("nan"), 0.0, 0.0, 0.0])


class TestPropertyBased:
    # A quadruple root perturbs into a cross of radius eps**(1/4) with
    # ~1e-4 imaginary parts; no coefficient-based solver can recover it
    # in float64, so the property tests require *some* spread (double
    # and triple roots remain in scope and are covered explicitly above).

    @given(st.lists(roots_strategy, min_size=4, max_size=4))
    def test_constructed_roots_are_found(self, roots):
        assume(max(roots) - min(roots) > 0.5)
        coeffs = poly_from_roots(roots)
        found = solve_quartic_real(coeffs)
        assert_contains(found, roots, tol=1e-3)

    @given(st.lists(roots_strategy, min_size=4, max_size=4))
    def test_closed_form_agrees_with_companion(self, roots):
        assume(max(roots) - min(roots) > 0.5)
        coeffs = poly_from_roots(roots)
        robust = solve_quartic_real(coeffs)
        closed = solve_quartic_real_closed(coeffs)
        # Same root set up to numerical tolerance (multiplicity aside).
        for root in closed:
            assert np.min(np.abs(robust - root)) <= 1e-3 * (1.0 + abs(root))
        for root in robust:
            assert np.min(np.abs(closed - root)) <= 1e-3 * (1.0 + abs(root))

    @given(
        st.lists(coefficients, min_size=5, max_size=5),
    )
    def test_every_returned_value_is_a_root(self, coeffs):
        found = solve_quartic_real(coeffs)
        scale = max(1.0, max(abs(c) for c in coeffs))
        for x in found:
            value = np.polyval(np.asarray(coeffs), x)
            # The imaginary-part filter deliberately projects conjugate
            # pairs within ~1e-5 of the real axis (double-root safety),
            # so residuals up to ~|p'| * 1e-5 are in-contract.
            assert abs(value) <= 1e-3 * scale * max(1.0, abs(x)) ** 4


class TestBatch:
    def test_matches_scalar(self, rng):
        coeffs = rng.normal(0.0, 10.0, (50, 5))
        batch = solve_quartic_real_batch(coeffs)
        for i in range(coeffs.shape[0]):
            scalar = solve_quartic_real(coeffs[i])
            from_batch = batch[i][~np.isnan(batch[i])]
            assert from_batch.size == scalar.size
            assert np.allclose(np.sort(from_batch), scalar, atol=1e-6)

    def test_degenerate_rows(self):
        coeffs = np.array(
            [
                [0.0, 0.0, 1.0, -3.0, 2.0],  # quadratic
                [1.0, 0.0, -5.0, 0.0, 4.0],  # biquadratic
                [0.0, 0.0, 0.0, 0.0, 0.0],  # identically zero
            ]
        )
        out = solve_quartic_real_batch(coeffs)
        assert out.shape == (3, 4)
        assert_contains(out[0][~np.isnan(out[0])], [1.0, 2.0])
        assert_contains(out[1][~np.isnan(out[1])], [-2.0, -1.0, 1.0, 2.0])
        assert np.all(np.isnan(out[2]))

    def test_empty_batch(self):
        assert solve_quartic_real_batch(np.empty((0, 5))).shape == (0, 4)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            solve_quartic_real_batch(np.zeros((3, 4)))
