"""Shared instrumentation-protocol test for every index structure.

All four indexes (linear scan, SS-tree, M-tree, VP-tree) expose the
same :class:`repro.index.instrumentation.IndexStatsMixin` surface:
``stats()``, ``node_accesses``, ``entries_scanned``, ``queries`` and
``reset_stats()``, and publish the same ``index.*`` counters through
:mod:`repro.obs` when instrumentation is enabled.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.geometry.hypersphere import Hypersphere
from repro.index.linear import LinearIndex
from repro.index.mtree import MTree
from repro.index.sstree import SSTree
from repro.index.vptree import VPTree
from repro.queries.knn import knn_query

STATS_KEYS = {
    "size",
    "height",
    "node_count",
    "queries",
    "node_accesses",
    "entries_scanned",
}

DIMENSION = 3
N_ITEMS = 80


def make_items(seed: int = 0):
    rng = np.random.default_rng(seed)
    return [
        (
            i,
            Hypersphere(
                rng.normal(0.0, 10.0, DIMENSION),
                float(abs(rng.normal(0.0, 1.0))),
            ),
        )
        for i in range(N_ITEMS)
    ]


def query_knn(index):
    knn_query(index, Hypersphere([0.0] * DIMENSION, 0.5), 3, criterion="hyperbola")


def query_range(index):
    index.range_query(Hypersphere([0.0] * DIMENSION, 5.0))


INDEXES = [
    pytest.param(LinearIndex, query_knn, id="linear"),
    pytest.param(
        lambda items: SSTree.bulk_load(items, max_entries=8), query_range, id="sstree"
    ),
    pytest.param(
        lambda items: MTree.build(items, max_entries=8), query_range, id="mtree"
    ),
    pytest.param(
        lambda items: VPTree.build(items, leaf_capacity=8), query_range, id="vptree"
    ),
]


@pytest.mark.parametrize("build, run_query", INDEXES)
class TestIndexStatsProtocol:
    def test_uniform_stats_keys(self, build, run_query):
        index = build(make_items())
        stats = index.stats()
        assert set(stats) == STATS_KEYS
        assert stats["size"] == N_ITEMS
        assert stats["height"] >= 1
        assert stats["node_count"] >= 1
        assert stats["queries"] == 0
        assert stats["node_accesses"] == 0
        assert stats["entries_scanned"] == 0

    def test_counts_grow_with_queries(self, build, run_query):
        index = build(make_items())
        run_query(index)
        first = index.stats()
        assert first["queries"] == 1
        assert first["node_accesses"] >= 1
        assert first["entries_scanned"] >= 1
        run_query(index)
        second = index.stats()
        assert second["queries"] == 2
        assert second["node_accesses"] >= first["node_accesses"]
        assert index.node_accesses == second["node_accesses"]
        assert index.entries_scanned == second["entries_scanned"]

    def test_reset_stats_keeps_structure(self, build, run_query):
        index = build(make_items())
        run_query(index)
        index.reset_stats()
        stats = index.stats()
        assert stats["queries"] == 0
        assert stats["node_accesses"] == 0
        assert stats["entries_scanned"] == 0
        assert stats["size"] == N_ITEMS

    def test_obs_counters_published_when_enabled(self, build, run_query):
        index = build(make_items())
        with obs.enabled_scope(), obs.scope():
            run_query(index)
            counters = obs.collect()["counters"]
        assert counters["index.queries"] == 1
        assert counters["index.node_accesses"] == index.node_accesses
        assert counters["index.entries_scanned"] == index.entries_scanned

    def test_no_obs_traffic_when_disabled(self, build, run_query):
        index = build(make_items())
        obs.disable()
        with obs.scope():
            run_query(index)
            counters = obs.collect()["counters"]
        assert counters == {}
        # Local tallies still work without the global registry.
        assert index.stats()["queries"] == 1
