"""Tests for the reverse-NN candidate query (extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import QueryError
from repro.geometry.hypersphere import Hypersphere
from repro.index.linear import LinearIndex
from repro.queries.rknn import rnn_candidates


def line_of_points(n: int, spacing: float = 1.0, radius: float = 0.0):
    return [
        (i, Hypersphere([i * spacing, 0.0], radius)) for i in range(n)
    ]


class TestPointConfiguration:
    def test_query_between_two_points(self):
        # Objects at 0 and 10; query at 4: both objects are closer to
        # the query than to each other? 0 <-> 10 distance is 10; object 0
        # sees the query at 4 < 10, object 10 sees it at 6 < 10: both
        # are RNN candidates.
        data = [(0, Hypersphere([0.0, 0.0], 0.0)), (1, Hypersphere([10.0, 0.0], 0.0))]
        query = Hypersphere([4.0, 0.0], 0.0)
        assert set(rnn_candidates(data, query)) == {0, 1}

    def test_far_query_prunes_everything(self):
        # A dense cluster far from the query: each member's nearest
        # neighbour is another member, never the query.
        data = line_of_points(10, spacing=0.5)
        query = Hypersphere([1000.0, 0.0], 0.0)
        assert rnn_candidates(data, query) == []

    def test_line_configuration(self):
        # Points at 0, 1, 2, ..., 9 and query at -0.4: only point 0 can
        # have the query as nearest neighbour (its distance to the query
        # is 0.4 < 1, everyone else is closer to a fellow point).
        data = line_of_points(10)
        query = Hypersphere([-0.4, 0.0], 0.0)
        assert rnn_candidates(data, query) == [0]

    def test_agrees_with_brute_force_points(self, rng):
        """For points, RNN candidacy is decidable exactly; compare."""
        n = 40
        data = [
            (i, Hypersphere(rng.normal(0.0, 5.0, 2), 0.0)) for i in range(n)
        ]
        query = Hypersphere(rng.normal(0.0, 5.0, 2), 0.0)
        got = set(rnn_candidates(data, query))
        expected = set()
        for i, (key, sphere) in enumerate(data):
            to_query = float(np.linalg.norm(sphere.center - query.center))
            to_others = min(
                float(np.linalg.norm(sphere.center - other.center))
                for j, (_, other) in enumerate(data)
                if j != i
            )
            if to_query < to_others:
                expected.add(key)
        # Candidates must include every true RNN; ties may add extras.
        assert expected <= got


class TestUncertainConfiguration:
    def test_uncertainty_keeps_ambiguous_objects(self):
        # Same line as test_line_configuration but fat spheres: now
        # point 1's region may reach closer to the query than to point 0.
        data = line_of_points(10, radius=0.45)
        query = Hypersphere([-0.4, 0.0], 0.45)
        candidates = set(rnn_candidates(data, query))
        assert 0 in candidates
        assert len(candidates) >= 1

    def test_unsound_criterion_returns_superset(self, rng):
        data = [
            (
                i,
                Hypersphere(
                    rng.normal(0.0, 5.0, 2), float(abs(rng.normal(0.0, 0.5)))
                ),
            )
            for i in range(60)
        ]
        query = Hypersphere(rng.normal(0.0, 5.0, 2), 0.5)
        exact = set(rnn_candidates(data, query, criterion="hyperbola"))
        loose = set(rnn_candidates(data, query, criterion="minmax"))
        assert exact <= loose

    def test_accepts_linear_index(self, rng):
        data = [
            (i, Hypersphere(rng.normal(0.0, 5.0, 2), 0.2)) for i in range(30)
        ]
        index = LinearIndex(data)
        query = Hypersphere([0.0, 0.0], 0.2)
        assert rnn_candidates(index, query) == rnn_candidates(data, query)

    def test_dimension_mismatch(self):
        data = line_of_points(5)
        with pytest.raises(QueryError):
            rnn_candidates(data, Hypersphere([0.0], 0.0))
