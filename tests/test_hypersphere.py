"""Unit and property tests for the Hypersphere value type."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given

from repro.exceptions import DimensionalityMismatchError, GeometryError
from repro.geometry.hypersphere import Hypersphere

from conftest import hyperspheres


class TestConstruction:
    def test_basic_attributes(self):
        s = Hypersphere([1.0, 2.0, 3.0], 0.5)
        assert s.dimension == 3
        assert s.radius == 0.5
        assert np.array_equal(s.center, [1.0, 2.0, 3.0])

    def test_from_point_has_zero_radius(self):
        s = Hypersphere.from_point([4.0, 5.0])
        assert s.is_point
        assert s.radius == 0.0

    def test_center_is_copied_and_read_only(self):
        source = np.array([1.0, 2.0])
        s = Hypersphere(source, 1.0)
        source[0] = 99.0
        assert s.center[0] == 1.0
        with pytest.raises(ValueError):
            s.center[0] = 7.0

    def test_accepts_lists_tuples_and_arrays(self):
        for center in ([0.0, 1.0], (0.0, 1.0), np.array([0.0, 1.0])):
            assert Hypersphere(center, 1.0).dimension == 2

    def test_integer_input_becomes_float(self):
        s = Hypersphere([1, 2], 3)
        assert s.center.dtype == np.float64
        assert isinstance(s.radius, float)

    def test_negative_radius_rejected(self):
        with pytest.raises(GeometryError):
            Hypersphere([0.0], -0.1)

    def test_nan_center_rejected(self):
        with pytest.raises(GeometryError):
            Hypersphere([float("nan"), 0.0], 1.0)

    def test_infinite_radius_rejected(self):
        with pytest.raises(GeometryError):
            Hypersphere([0.0], float("inf"))

    def test_empty_center_rejected(self):
        with pytest.raises(GeometryError):
            Hypersphere([], 1.0)

    def test_matrix_center_rejected(self):
        with pytest.raises(GeometryError):
            Hypersphere(np.zeros((2, 2)), 1.0)


class TestPredicates:
    def test_contains_boundary_point(self):
        s = Hypersphere([0.0, 0.0], 1.0)
        assert s.contains([1.0, 0.0])
        assert not s.contains([1.0, 0.0], strict=True)

    def test_contains_dimension_mismatch(self):
        with pytest.raises(DimensionalityMismatchError):
            Hypersphere([0.0, 0.0], 1.0).contains([0.0])

    def test_overlap_is_touching_inclusive(self):
        a = Hypersphere([0.0], 1.0)
        b = Hypersphere([2.0], 1.0)  # exactly touching
        assert a.overlaps(b)
        assert not a.overlaps(Hypersphere([2.5], 1.0))

    def test_overlap_dimension_mismatch(self):
        with pytest.raises(DimensionalityMismatchError):
            Hypersphere([0.0], 1.0).overlaps(Hypersphere([0.0, 0.0], 1.0))

    def test_contains_sphere(self):
        outer = Hypersphere([0.0, 0.0], 5.0)
        assert outer.contains_sphere(Hypersphere([1.0, 1.0], 2.0))
        assert not outer.contains_sphere(Hypersphere([4.0, 0.0], 2.0))

    @given(hyperspheres())
    def test_overlap_is_reflexive_and_symmetric(self, s):
        assert s.overlaps(s)
        other = s.translated(np.full(s.dimension, 0.1))
        assert s.overlaps(other) == other.overlaps(s)


class TestSampling:
    def test_samples_lie_inside(self, rng):
        s = Hypersphere([3.0, -2.0, 1.0], 2.5)
        points = s.sample(rng, 500)
        assert points.shape == (500, 3)
        gaps = np.linalg.norm(points - s.center, axis=1)
        assert np.all(gaps <= s.radius + 1e-12)

    def test_surface_samples_on_boundary(self, rng):
        s = Hypersphere([0.0, 0.0], 4.0)
        points = s.sample_surface(rng, 200)
        gaps = np.linalg.norm(points - s.center, axis=1)
        assert np.allclose(gaps, 4.0)

    def test_point_sphere_samples_are_the_point(self, rng):
        s = Hypersphere([1.0, 2.0], 0.0)
        assert np.allclose(s.sample(rng, 10), s.center)

    def test_negative_sample_size_rejected(self, rng):
        with pytest.raises(GeometryError):
            Hypersphere([0.0], 1.0).sample(rng, -1)


class TestTransformations:
    def test_translated(self):
        s = Hypersphere([1.0, 1.0], 2.0).translated([1.0, -1.0])
        assert np.array_equal(s.center, [2.0, 0.0])
        assert s.radius == 2.0

    def test_scaled(self):
        s = Hypersphere([2.0], 3.0).scaled(2.0)
        assert s.center[0] == 4.0
        assert s.radius == 6.0

    def test_scaled_negative_rejected(self):
        with pytest.raises(GeometryError):
            Hypersphere([0.0], 1.0).scaled(-1.0)

    def test_with_radius(self):
        s = Hypersphere([0.0], 1.0).with_radius(9.0)
        assert s.radius == 9.0


class TestDunder:
    def test_equality_and_hash(self):
        a = Hypersphere([1.0, 2.0], 3.0)
        b = Hypersphere([1.0, 2.0], 3.0)
        c = Hypersphere([1.0, 2.0], 4.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a sphere"

    def test_iter_yields_center_then_radius(self):
        assert list(Hypersphere([1.0, 2.0], 3.0)) == [1.0, 2.0, 3.0]

    def test_repr_mentions_radius(self):
        assert "radius=2" in repr(Hypersphere([0.0], 2.0))
