"""The tri-state Decision vocabulary, the ladder, and VerifiedHyperbola."""

from __future__ import annotations

import math

import pytest

from repro import Decision, Verdict, VerifiedHyperbola, obs
from repro.core.base import get_criterion
from repro.core.hyperbola import HyperbolaCriterion, min_distance_to_boundary
from repro.exceptions import DimensionalityMismatchError
from repro.geometry.hypersphere import Hypersphere
from repro.robust import DEFAULT_LADDER, FLOAT_LADDER, decide

SA = Hypersphere([0.0, 0.0], 1.0)
SB = Hypersphere([10.0, 0.0], 1.0)
SQ = Hypersphere([-3.0, 0.0], 0.5)


def _boundary_query(factor: float) -> Hypersphere:
    """A query sphere whose radius sits *factor* times the exact margin."""
    dmin = min_distance_to_boundary(SA, SB, SQ.center)
    return Hypersphere(SQ.center, dmin * factor)


class TestVerdict:
    def test_is_tri_state(self):
        assert {Verdict.TRUE, Verdict.FALSE, Verdict.UNCERTAIN} == set(Verdict)

    def test_refuses_boolean_coercion(self):
        with pytest.raises(TypeError, match="tri-state"):
            bool(Verdict.TRUE)
        with pytest.raises(TypeError):
            if Verdict.UNCERTAIN:  # pragma: no cover - the raise is the test
                pass


class TestDecision:
    def test_certified_flags(self):
        assert Decision(Verdict.TRUE).certified
        assert Decision(Verdict.FALSE).certified
        assert not Decision(Verdict.UNCERTAIN).certified

    def test_as_bool_collapses_certified(self):
        assert Decision(Verdict.TRUE).as_bool() is True
        assert Decision(Verdict.FALSE).as_bool() is False

    def test_as_bool_uses_fallback_when_uncertain(self):
        assert Decision(Verdict.UNCERTAIN, fallback=True).as_bool() is True
        assert Decision(Verdict.UNCERTAIN, fallback=False).as_bool() is False
        # No fallback computed: the conservative direction is "keep".
        assert Decision(Verdict.UNCERTAIN).as_bool() is False

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Decision(Verdict.TRUE).verdict = Verdict.FALSE

    def test_repr_mentions_stage_and_fallback(self):
        text = repr(Decision(Verdict.UNCERTAIN, stage="exact", fallback=True))
        assert "UNCERTAIN" in text and "exact" in text and "fallback=True" in text


class TestLadder:
    def test_easy_case_decided_by_first_stage(self):
        decision = decide(SA, SB, SQ)
        assert decision.verdict is Verdict.TRUE
        assert decision.stage == "closed"
        assert decision.margin > decision.bound > 0.0

    def test_clear_negative_decided_cheaply(self):
        decision = decide(SB, SA, SQ)  # roles swapped: clearly not dominating
        assert decision.verdict is Verdict.FALSE
        assert decision.stage == "closed"
        assert decision.margin < 0.0

    def test_boundary_case_escalates_to_exact(self):
        for factor in (1.0 - 3e-13, 1.0 + 3e-13):
            decision = decide(SA, SB, _boundary_query(factor))
            assert decision.certified
            assert decision.stage in ("longdouble", "exact")

    def test_exact_stage_verdict_matches_sign(self):
        inside = decide(SA, SB, _boundary_query(1.0 - 3e-13))
        outside = decide(SA, SB, _boundary_query(1.0 + 3e-13))
        assert inside.verdict is Verdict.TRUE
        assert outside.verdict is Verdict.FALSE

    def test_full_ladder_never_uncertain(self):
        # The exact arbiter always terminates with a verdict, even at
        # the exactly-critical radius.
        decision = decide(SA, SB, _boundary_query(1.0))
        assert decision.certified

    def test_truncated_ladder_goes_uncertain_on_boundary(self):
        decision = decide(SA, SB, _boundary_query(1.0), FLOAT_LADDER)
        assert decision.verdict is Verdict.UNCERTAIN
        assert decision.stage == "longdouble"
        assert math.isfinite(decision.margin)
        assert decision.bound > 0.0

    def test_stage_counters_recorded(self):
        with obs.enabled_scope(True), obs.scope():
            decide(SA, SB, _boundary_query(1.0))
            counters = obs.collect()["counters"]
        assert counters.get("verified.stage.closed", 0) == 1
        assert counters.get("verified.stage.exact", 0) == 1

    def test_overlapping_spheres_false(self):
        a = Hypersphere([0.0, 0.0], 2.0)
        b = Hypersphere([1.0, 0.0], 2.0)
        decision = decide(a, b, SQ)
        assert decision.verdict is Verdict.FALSE

    def test_coincident_centers_false(self):
        decision = decide(SA, SA, SQ)
        assert decision.verdict is Verdict.FALSE

    def test_one_dimensional(self):
        a = Hypersphere([0.0], 0.5)
        b = Hypersphere([50.0], 0.5)
        q = Hypersphere([-1.0], 0.25)
        assert decide(a, b, q).verdict is Verdict.TRUE

    def test_point_radii(self):
        a = Hypersphere([0.0, 0.0], 0.0)
        b = Hypersphere([10.0, 0.0], 0.0)
        q = Hypersphere([-1.0, 0.0], 0.0)
        assert decide(a, b, q).verdict is Verdict.TRUE


class TestVerifiedHyperbola:
    def test_registered_and_flagged(self):
        criterion = get_criterion("verified")
        assert isinstance(criterion, VerifiedHyperbola)
        assert isinstance(criterion, HyperbolaCriterion)
        assert criterion.is_correct and criterion.is_sound

    def test_boolean_protocol_matches_decide(self):
        criterion = VerifiedHyperbola()
        assert criterion.dominates(SA, SB, SQ) is True
        assert criterion.decide(SA, SB, SQ).verdict is Verdict.TRUE
        assert criterion.dominates(SB, SA, SQ) is False

    def test_validates_dimensions(self):
        criterion = VerifiedHyperbola()
        with pytest.raises(DimensionalityMismatchError):
            criterion.decide(SA, SB, Hypersphere([0.0], 1.0))
        with pytest.raises(DimensionalityMismatchError):
            criterion.dominates(SA, Hypersphere([0.0], 1.0), SQ)

    def test_non_strict_uses_float_fast_path(self):
        relaxed = VerifiedHyperbola(strict=False)
        plain = HyperbolaCriterion()
        assert relaxed.dominates(SA, SB, SQ) == plain.dominates(SA, SB, SQ)
        # decide() still certifies regardless of the flag.
        assert relaxed.decide(SA, SB, SQ).certified

    def test_uncertain_counted_and_fallback_attached(self):
        criterion = VerifiedHyperbola(ladder=FLOAT_LADDER)
        decision = criterion.decide(SA, SB, _boundary_query(1.0))
        assert decision.verdict is Verdict.UNCERTAIN
        assert decision.fallback in (True, False)
        assert criterion.uncertain_count == 1
        criterion.decide(SA, SB, SQ)  # easy case: counter unchanged
        assert criterion.uncertain_count == 1

    def test_uncertain_fallback_is_conservative(self):
        # On a borderline configuration the fallback may only say True
        # if a *correct* criterion proved it: verify it against the
        # exact arbiter.
        from repro.robust import exact_dominates

        criterion = VerifiedHyperbola(ladder=FLOAT_LADDER)
        query = _boundary_query(1.0)
        decision = criterion.decide(SA, SB, query)
        if decision.fallback:
            assert exact_dominates(SA, SB, query)

    def test_default_ladder_is_full(self):
        assert VerifiedHyperbola()._ladder is DEFAULT_LADDER


class TestQueryIntegration:
    def test_knn_counts_uncertain_decisions(self):
        from repro.index.linear import LinearIndex
        from repro.queries.knn import knn_query

        spheres = [
            ("a", Hypersphere([0.0, 0.0], 0.3)),
            ("b", Hypersphere([1.0, 0.0], 0.3)),
            ("c", Hypersphere([4.0, 0.0], 0.3)),
            ("d", Hypersphere([9.0, 0.0], 0.3)),
        ]
        index = LinearIndex(spheres)
        query = Hypersphere([0.2, 0.1], 0.1)
        result = knn_query(index, query, 2, criterion=VerifiedHyperbola())
        assert result.uncertain_decisions == 0  # well-separated data
        reference = knn_query(index, query, 2, criterion="hyperbola")
        assert result.key_set() == reference.key_set()

    def test_rnn_with_verified_matches_hyperbola(self):
        from repro.queries.rknn import rnn_candidates

        spheres = [
            ("a", Hypersphere([0.0, 0.0], 0.2)),
            ("b", Hypersphere([2.0, 0.0], 0.2)),
            ("c", Hypersphere([8.0, 0.0], 0.2)),
        ]
        query = Hypersphere([0.5, 0.5], 0.1)
        assert rnn_candidates(spheres, query, criterion=VerifiedHyperbola()) == (
            rnn_candidates(spheres, query, criterion="hyperbola")
        )
