"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import os

import hypothesis
import hypothesis.strategies as st
import numpy as np
import pytest

from repro.geometry.hypersphere import Hypersphere

# Property-based tests call the numerical oracle, whose runtime is data
# dependent; a wall-clock deadline would make them flaky.
hypothesis.settings.register_profile(
    "repro", deadline=None, max_examples=60, derandomize=True
)
# The long profile behind `make fuzz` / the CI fuzz job: many more
# examples, non-derandomised so successive runs explore new ground.
hypothesis.settings.register_profile(
    "fuzz", deadline=None, max_examples=500, derandomize=False
)
hypothesis.settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))

# Bounded, well-conditioned coordinates keep the geometry away from
# float overflow while still exercising sign/scale variety.
finite_coordinates = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)
small_radii = st.floats(
    min_value=0.0, max_value=8.0, allow_nan=False, allow_infinity=False
)
dimensions = st.integers(min_value=1, max_value=7)


@st.composite
def hyperspheres(draw, dimension: int | None = None) -> Hypersphere:
    """A random well-conditioned hypersphere."""
    if dimension is None:
        dimension = draw(dimensions)
    center = draw(
        st.lists(finite_coordinates, min_size=dimension, max_size=dimension)
    )
    radius = draw(small_radii)
    return Hypersphere(center, radius)


@st.composite
def sphere_triples(draw) -> tuple[Hypersphere, Hypersphere, Hypersphere]:
    """Three hyperspheres sharing one dimensionality (Sa, Sb, Sq)."""
    dimension = draw(dimensions)
    return (
        draw(hyperspheres(dimension)),
        draw(hyperspheres(dimension)),
        draw(hyperspheres(dimension)),
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for non-hypothesis tests."""
    return np.random.default_rng(20140622)  # SIGMOD'14 opening day
