"""End-to-end serve tests: a real asyncio server on an ephemeral port.

Every test here drives the full stack — TCP connection, hand-rolled
HTTP parsing, routing, admission, budget scope in an executor thread,
response encoding — not the handler functions in isolation.
"""

from __future__ import annotations

import asyncio
import io
import json

import pytest

from repro import obs
from repro.data.synthetic import synthetic_dataset
from repro.data.workload import knn_queries
from repro.index import snapshot as snapshot_io
from repro.index.sstree import SSTree
from repro.obs import export as obs_export
from repro.obs import names
from repro.queries.knn import knn_query
from repro.resilience.partial import ResilienceReport
from repro.serve.admission import AdmissionController
from repro.serve.app import ServeApp, start_server
from repro.serve.breaker import BreakerState
from repro.serve.retry import RetryPolicy
from repro.serve.smoke import request
from repro.serve.tenancy import TenantClass, TenantPolicy

N, DIMENSION, K = 120, 3, 5


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset(N, DIMENSION, mu=0.15, seed=11)


@pytest.fixture(scope="module")
def snapshot_path(dataset, tmp_path_factory):
    tree = SSTree.bulk_load(dataset.items(), max_entries=8)
    path = tmp_path_factory.mktemp("serve") / "fixture.snap"
    snapshot_io.save(tree, path)
    return str(path)


@pytest.fixture(scope="module")
def query_body(dataset):
    sphere = knn_queries(dataset, count=1, seed=5)[0]
    return {
        "kind": "knn",
        "index": "default",
        "center": [float(c) for c in sphere.center],
        "radius": float(sphere.radius),
        "k": K,
    }


def drive(app: ServeApp, scenario):
    """Boot *app*, run ``await scenario(host, port)``, tear down."""

    async def go():
        server = await start_server(app)
        host, port = server.sockets[0].getsockname()[:2]
        try:
            return await scenario(host, port)
        finally:
            server.close()
            await server.wait_closed()

    with obs.enabled_scope(True), obs.scope():
        try:
            return asyncio.run(go()), obs.collect()
        finally:
            app.close()


def make_app(snapshot_path, **kwargs) -> ServeApp:
    return ServeApp.from_snapshots({"default": snapshot_path}, **kwargs)


class TestOperationalEndpoints:
    def test_healthz_readyz_metrics(self, snapshot_path):
        async def scenario(host, port):
            health = await request(host, port, "GET", "/healthz")
            ready = await request(host, port, "GET", "/readyz")
            metrics = await request(host, port, "GET", "/metrics")
            return health, ready, metrics

        (health, ready, metrics), _ = drive(make_app(snapshot_path), scenario)
        assert health[0] == 200
        assert ready[0] == 200
        body = json.loads(ready[2])
        assert body["ready"] is True
        index = body["indexes"]["default"]
        assert index["healthy"] and index["entries"] == N
        assert index["breaker"]["state"] == "closed"
        assert metrics[0] == 200
        assert metrics[1]["content-type"].startswith("text/plain")
        assert "# TYPE repro_serve_requests_total counter" in metrics[2].decode()

    def test_unknown_path_404_and_wrong_method_405(self, snapshot_path):
        async def scenario(host, port):
            return (
                await request(host, port, "GET", "/nope"),
                await request(host, port, "GET", "/query"),
            )

        (missing, wrong_method), _ = drive(make_app(snapshot_path), scenario)
        assert missing[0] == 404
        assert wrong_method[0] == 405

    def test_protocol_garbage_gets_4xx_not_a_hangup(self, snapshot_path):
        async def scenario(host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"COMPLETE GARBAGE\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            return raw

        raw, stats = drive(make_app(snapshot_path), scenario)
        assert b"HTTP/1.1 4" in raw  # a clean 4xx, never a dropped socket
        assert stats["counters"][names.SERVE_PROTOCOL_ERRORS] == 1


class TestQueryPath:
    def test_clean_knn_matches_direct_query(
        self, snapshot_path, dataset, query_body
    ):
        async def scenario(host, port):
            return await request(host, port, "POST", "/query", body=query_body)

        (status, _, body), stats = drive(make_app(snapshot_path), scenario)
        assert status == 200
        payload = json.loads(body)
        assert payload["degraded"] is False
        assert payload["kind"] == "knn"
        assert payload["report"]["complete"] is True
        tree = SSTree.bulk_load(dataset.items(), max_entries=8)
        sphere = knn_queries(dataset, count=1, seed=5)[0]
        direct = knn_query(tree, sphere, K)
        assert set(payload["result"]["keys"]) == direct.key_set()
        assert payload["result"]["distk"] == pytest.approx(direct.distk)
        assert stats["counters"][names.SERVE_RESPONSES_OK] == 1
        assert stats["counters"][names.tenant_outcome("standard", "ok")] == 1

    @pytest.mark.parametrize("kind", ("rknn", "dominating"))
    def test_other_query_kinds_serve(self, snapshot_path, query_body, kind):
        body = dict(query_body, kind=kind)

        async def scenario(host, port):
            return await request(host, port, "POST", "/query", body=body)

        (status, _, raw), _ = drive(make_app(snapshot_path), scenario)
        assert status == 200
        payload = json.loads(raw)
        assert payload["kind"] == kind
        assert isinstance(payload["result"], list)

    @pytest.mark.parametrize(
        "mutation",
        [
            {"kind": "teleport"},
            {"center": "not a list"},
            {"center": []},
            {"center": [1.0, "x", 2.0]},
            {"radius": "wide"},
            {"radius": -2.0},
            {"k": 0},
            {"k": True},
            {"k": "many"},
            {"index": ""},
            {"strategy": "magic"},
            {"algorithm": "quantum"},
            {"criterion": 7},
        ],
    )
    def test_invalid_payloads_get_400(self, snapshot_path, query_body, mutation):
        body = dict(query_body, **mutation)

        async def scenario(host, port):
            return await request(host, port, "POST", "/query", body=body)

        (status, _, raw), stats = drive(make_app(snapshot_path), scenario)
        assert status == 400
        assert json.loads(raw)["error"] == "validation"
        assert stats["counters"][names.SERVE_RESPONSES_REJECTED] == 1

    def test_dimension_mismatch_is_400_not_500(self, snapshot_path, query_body):
        body = dict(query_body, center=[0.0, 0.0])  # index is 3-d

        async def scenario(host, port):
            return await request(host, port, "POST", "/query", body=body)

        (status, _, raw), _ = drive(make_app(snapshot_path), scenario)
        assert status == 400
        assert json.loads(raw)["error"] == "validation"

    def test_unknown_index_404(self, snapshot_path, query_body):
        body = dict(query_body, index="elsewhere")

        async def scenario(host, port):
            return await request(host, port, "POST", "/query", body=body)

        (status, _, raw), _ = drive(make_app(snapshot_path), scenario)
        assert status == 404
        payload = json.loads(raw)
        assert payload["error"] == "unknown_index"
        assert payload["known"] == ["default"]

    def test_tenant_header_resolves_and_echoes(self, snapshot_path, query_body):
        async def scenario(host, port):
            return (
                await request(
                    host,
                    port,
                    "POST",
                    "/query",
                    body=query_body,
                    headers={"x-tenant-class": "interactive"},
                ),
                await request(
                    host,
                    port,
                    "POST",
                    "/query",
                    body=query_body,
                    headers={"x-tenant-class": "who-knows"},
                ),
            )

        (interactive, unknown), _ = drive(make_app(snapshot_path), scenario)
        assert json.loads(interactive[2])["tenant_class"] == "interactive"
        # Unknown classes degrade to the default, they don't error.
        assert json.loads(unknown[2])["tenant_class"] == "standard"

    def test_event_log_records_served_queries(self, snapshot_path, query_body):
        sink = io.StringIO()
        app = make_app(
            snapshot_path, event_log=obs_export.QueryEventLog(sink)
        )

        async def scenario(host, port):
            return await request(host, port, "POST", "/query", body=query_body)

        (status, _, _), _ = drive(app, scenario)
        assert status == 200
        lines = [l for l in sink.getvalue().splitlines() if l]
        assert len(lines) == 1
        event = json.loads(lines[0])
        assert event["kind"] == "serve.knn"
        assert event["complete"] is True


class TestDegradationAndSheds:
    def test_rate_limit_shed_is_429_with_retry_after(
        self, snapshot_path, query_body
    ):
        stingy = TenantClass(
            name="stingy", deadline_ms=1000.0, rate_per_s=0.1, burst=1
        )
        app = make_app(
            snapshot_path,
            policy=TenantPolicy({"stingy": stingy}, default="stingy"),
        )

        async def scenario(host, port):
            first = await request(host, port, "POST", "/query", body=query_body)
            second = await request(host, port, "POST", "/query", body=query_body)
            return first, second

        (first, second), stats = drive(app, scenario)
        assert first[0] == 200
        status, headers, raw = second
        assert status == 429
        payload = json.loads(raw)
        assert payload["reason"] == "rate_limited"
        assert float(headers["retry-after"]) > 0.0
        assert stats["counters"][names.SERVE_RESPONSES_SHED] == 1
        assert stats["counters"][names.SERVE_ADMISSION_RATE_LIMITED] == 1

    def test_handler_fault_becomes_206_with_full_report(
        self, snapshot_path, query_body
    ):
        from repro.robust import faults

        app = make_app(snapshot_path)

        async def scenario(host, port):
            with faults.inject("handler", "raise"):
                return await request(
                    host,
                    port,
                    "POST",
                    "/query",
                    body=query_body,
                    headers={"x-tenant-class": "batch"},  # no retry
                )

        (status, _, raw), stats = drive(app, scenario)
        assert status == 206
        payload = json.loads(raw)
        assert payload["degraded"] is True
        report = ResilienceReport.from_dict(payload["report"])
        assert report.degraded and report.absorbed_faults >= 1
        assert report.exhausted == "fault"
        assert stats["counters"][names.SERVE_HANDLER_FAULTS] == 1
        assert stats["counters"][names.SERVE_RESPONSES_DEGRADED] == 1

    def test_transient_fault_rescued_by_retry(self, snapshot_path, query_body):
        from repro.robust import faults

        app = make_app(
            snapshot_path, retry_policy=RetryPolicy(backoff_s=0.0)
        )

        async def scenario(host, port):
            # every=2: the first attempt faults, the retry runs clean.
            with faults.inject("handler", "raise", every=2):
                return await request(
                    host, port, "POST", "/query", body=query_body
                )

        (status, _, raw), stats = drive(app, scenario)
        assert status == 200
        payload = json.loads(raw)
        assert payload["degraded"] is False
        assert payload["attempts"] == 2
        assert stats["counters"][names.SERVE_RETRIES] == 1
        assert stats["counters"][names.SERVE_RETRY_RESCUES] == 1

    def test_breaker_opens_then_recovers(self, snapshot_path, query_body):
        from repro.robust import faults

        app = make_app(
            snapshot_path,
            breaker_failure_threshold=2,
            breaker_recovery_s=0.15,
        )
        batch = {"x-tenant-class": "batch"}  # no retry: one fault each

        async def scenario(host, port):
            with faults.inject("handler", "raise"):
                faulted = [
                    (
                        await request(
                            host, port, "POST", "/query",
                            body=query_body, headers=batch,
                        )
                    )[0]
                    for _ in range(2)
                ]
            shed_status, shed_headers, shed_raw = await request(
                host, port, "POST", "/query", body=query_body, headers=batch
            )
            opened = app.indexes["default"].breaker.state
            await asyncio.sleep(0.3)  # past the recovery window
            probe = await request(
                host, port, "POST", "/query", body=query_body, headers=batch
            )
            return faulted, (shed_status, shed_headers, shed_raw), opened, probe

        (faulted, shed, opened, probe), stats = drive(app, scenario)
        assert faulted == [206, 206]
        assert shed[0] == 429
        assert json.loads(shed[2])["reason"] == "breaker_open"
        assert float(shed[1]["retry-after"]) > 0.0
        assert opened is BreakerState.OPEN
        # The half-open probe ran clean and closed the breaker.
        assert probe[0] == 200
        assert app.indexes["default"].breaker.state is BreakerState.CLOSED
        counters = stats["counters"]
        assert counters[names.breaker_transition("default", "open")] == 1
        assert counters[names.breaker_transition("default", "closed")] == 1
        assert counters[names.SERVE_BREAKER_SHORT_CIRCUITS] >= 1


class TestQuarantine:
    def test_corrupt_snapshot_quarantines_instead_of_crashing(
        self, tmp_path, query_body
    ):
        bad = tmp_path / "bad.snap"
        bad.write_bytes(b"\x00" * 64)

        with obs.enabled_scope(True), obs.scope():
            app = ServeApp.from_snapshots({"default": str(bad)})
            assert obs.counter_value(names.SERVE_QUARANTINED_INDEXES) == 1
        state = app.indexes["default"]
        assert state.quarantined
        assert "SnapshotCorruptionError" in (state.error or "")

        async def scenario(host, port):
            ready = await request(host, port, "GET", "/readyz")
            query = await request(host, port, "POST", "/query", body=query_body)
            return ready, query

        (ready, query), stats = drive(app, scenario)
        assert ready[0] == 503
        assert json.loads(ready[2])["ready"] is False
        assert query[0] == 503
        assert json.loads(query[2])["error"] == "index_quarantined"
        assert stats["counters"][names.SERVE_RESPONSES_UNAVAILABLE] == 1

    def test_one_quarantined_index_does_not_sink_the_healthy_one(
        self, tmp_path, snapshot_path, query_body
    ):
        bad = tmp_path / "bad.snap"
        bad.write_bytes(b"junk")
        app = ServeApp.from_snapshots(
            {"default": snapshot_path, "corrupt": str(bad)}
        )

        async def scenario(host, port):
            ready = await request(host, port, "GET", "/readyz")
            good = await request(host, port, "POST", "/query", body=query_body)
            return ready, good

        (ready, good), _ = drive(app, scenario)
        assert ready[0] == 200  # any healthy index keeps the pod ready
        body = json.loads(ready[2])
        assert body["indexes"]["corrupt"]["healthy"] is False
        assert good[0] == 200


class TestServeCli:
    def test_build_app_synthetic_fallback_and_snapshot(self, snapshot_path):
        from repro.serve.cli import build_app, build_parser

        parser = build_parser()
        app = build_app(parser.parse_args([]))
        try:
            assert app.indexes["default"].source == "synthetic"
        finally:
            app.close()
        app = build_app(
            parser.parse_args(
                ["--snapshot", f"main={snapshot_path}", "--deadline-ms", "500"]
            )
        )
        try:
            assert app.indexes["main"].healthy
            # --deadline-ms rescales the whole tenant ladder (500 is the
            # new 'standard'; interactive keeps its 150/1000 proportion).
            assert app.policy.resolve("standard").deadline_ms == pytest.approx(500)
            assert app.policy.resolve("interactive").deadline_ms == pytest.approx(75)
        finally:
            app.close()

    def test_malformed_snapshot_spec_fails_cleanly(self, capsys):
        from repro.serve.cli import main

        assert main(["--snapshot", "missing-equals-sign"]) == 1
        assert "NAME=PATH" in capsys.readouterr().err
