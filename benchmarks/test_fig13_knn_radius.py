"""Figure 13: effect of the average radius mu on kNN queries (synthetic).

Query time (benchmarked) and precision (``extra_info``) for the eight
DF/HS x {Hyper, MinMax, MBR, GP} combinations at each mu.

Expected shape: MinMax-based algorithms are the fastest; only the
Hyperbola-based ones hold 100% precision, and the others' precision
drops as mu grows (more uncertainty -> more unsound prunes missed).
"""

from __future__ import annotations

import pytest

from conftest import KNN_CRITERIA, bench_knn

MU_VALUES = (5.0, 10.0, 50.0, 100.0)


@pytest.mark.parametrize("mu", MU_VALUES)
@pytest.mark.parametrize("strategy", ("hs", "df"))
@pytest.mark.parametrize("criterion", KNN_CRITERIA)
def test_knn_radius_sweep(benchmark, mu, strategy, criterion):
    benchmark.extra_info["mu"] = mu
    bench_knn(benchmark, strategy=strategy, criterion=criterion, k=10, mu=mu)
