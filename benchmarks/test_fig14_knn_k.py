"""Figure 14: effect of k on kNN queries (synthetic).

Expected shape: query time grows with k for every combination (a longer
best-known list costs more maintenance); precision is roughly flat in k.
"""

from __future__ import annotations

import pytest

from conftest import KNN_CRITERIA, bench_knn

K_VALUES = (1, 10, 20, 30)


@pytest.mark.parametrize("k", K_VALUES)
@pytest.mark.parametrize("strategy", ("hs", "df"))
@pytest.mark.parametrize("criterion", KNN_CRITERIA)
def test_knn_k_sweep(benchmark, k, strategy, criterion):
    benchmark.extra_info["k"] = k
    bench_knn(benchmark, strategy=strategy, criterion=criterion, k=k)
