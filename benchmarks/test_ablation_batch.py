"""Ablation: scalar (per-triple) vs vectorised (whole-workload) kernels.

Quantifies how much of the scalar criteria's measured time is CPython
call overhead: the batch kernels evaluate the same decisions in NumPy.
The answers are asserted identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import get_criterion
from repro.core.batch import batch_evaluate
from repro.geometry.hypersphere import Hypersphere

from conftest import DOMINANCE_CRITERIA, dominance_workload, make_synthetic

WORKLOAD = dominance_workload(make_synthetic())
TRIPLES = list(WORKLOAD.triples())


@pytest.mark.parametrize("name", DOMINANCE_CRITERIA)
def test_scalar_kernel(benchmark, name):
    criterion = get_criterion(name)

    def run():
        return sum(criterion.dominates(sa, sb, sq) for sa, sb, sq in TRIPLES)

    positives = benchmark(run)
    benchmark.extra_info["mode"] = "scalar"
    benchmark.extra_info["positives"] = positives


@pytest.mark.parametrize("name", DOMINANCE_CRITERIA)
def test_batch_kernel(benchmark, name):
    arrays = WORKLOAD.arrays()
    out = benchmark(batch_evaluate, name, *arrays)
    benchmark.extra_info["mode"] = "batch"
    benchmark.extra_info["positives"] = int(np.count_nonzero(out))
    # The two modes must agree decision-for-decision.
    criterion = get_criterion(name)
    scalar = np.array([criterion.dominates(*t) for t in TRIPLES])
    assert np.array_equal(out, scalar)
