"""Ablation: the filter-and-refine cascade vs the plain exact decision.

The cascade (MinMax fast-accept / center-witness fast-reject, then
Hyperbola) is decision-identical to Hyperbola; this benchmark measures
how much of a random workload the shortcuts absorb.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import get_criterion

from conftest import dominance_workload, make_synthetic


@pytest.mark.parametrize("name", ("hyperbola", "cascade"))
@pytest.mark.parametrize("mu", (5.0, 50.0))
def test_cascade_vs_exact(benchmark, name, mu):
    workload = dominance_workload(make_synthetic(mu=mu))
    triples = list(workload.triples())
    criterion = get_criterion(name)

    def run():
        return sum(criterion.dominates(sa, sb, sq) for sa, sb, sq in triples)

    positives = benchmark(run)
    benchmark.extra_info["criterion"] = name
    benchmark.extra_info["mu"] = mu
    benchmark.extra_info["positives"] = positives
    # Decision-identical to the exact criterion by construction.
    exact = get_criterion("hyperbola")
    assert positives == sum(
        exact.dominates(sa, sb, sq) for sa, sb, sq in triples
    )
