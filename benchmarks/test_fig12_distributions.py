"""Figure 12: dominance execution time under different data distributions.

The G-G / G-U / U-G / U-U grid (Gaussian vs Uniform for centers and
radii).  Expected shape: no criterion's runtime is strongly affected by
the distribution; Hyperbola and Trigonometric mildly favour Gaussian
data (as the paper observes).
"""

from __future__ import annotations

import pytest

from conftest import (
    DOMINANCE_CRITERIA,
    bench_criterion_workload,
    dominance_workload,
    make_synthetic,
)

GRID = (
    ("gaussian", "gaussian", "G-G"),
    ("gaussian", "uniform", "G-U"),
    ("uniform", "gaussian", "U-G"),
    ("uniform", "uniform", "U-U"),
)


@pytest.mark.parametrize(("centers", "radii", "label"), GRID)
@pytest.mark.parametrize("name", DOMINANCE_CRITERIA)
def test_dominance_distribution_grid(benchmark, name, centers, radii, label):
    dataset = make_synthetic(
        center_distribution=centers, radius_distribution=radii
    )
    workload = dominance_workload(dataset)
    benchmark.extra_info["distribution"] = label
    bench_criterion_workload(benchmark, name, workload)
