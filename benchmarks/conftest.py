"""Shared fixtures for the pytest-benchmark suite.

Every benchmark regenerates (a scaled-down instance of) one of the
paper's tables or figures: the parametrisation axes are the figure's
x-axis, the benchmarked callable is the measured quantity (criterion
execution / kNN query), and quality metrics (precision, recall,
coverage) are attached to ``benchmark.extra_info`` so a single
``pytest benchmarks/ --benchmark-only`` run reports both time and
quality per configuration.

Scale note: dataset and workload sizes here are intentionally far below
the paper's (see EXPERIMENTS.md); run ``python -m repro <figN> --scale
1.0`` for paper-sized sweeps.  Shapes are preserved at any scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import get_criterion
from repro.core.batch import batch_evaluate
from repro.data.real import real_dataset
from repro.data.synthetic import Dataset, synthetic_dataset
from repro.data.workload import DominanceWorkload


def pytest_addoption(parser):
    """Register the headless smoke-lane flag.

    ``--bench-quick`` shrinks every dataset/workload size by 4x so a
    full ``pytest benchmarks/ --benchmark-only`` sweep finishes inside
    a CI smoke budget; the parametrisation axes (and hence the shapes)
    are unchanged.
    """
    parser.addoption(
        "--bench-quick",
        action="store_true",
        default=False,
        help="shrink benchmark dataset/workload sizes 4x (CI smoke lane)",
    )


def pytest_configure(config):
    """Trim benchmark rounds so the kNN sweeps stay tractable.

    Only touches options left at their pytest-benchmark defaults, so
    explicit ``--benchmark-min-rounds`` / ``--benchmark-max-time`` flags
    still win.  Under ``--bench-quick`` the module-level scale knobs
    shrink before collection, so every helper reading them at call time
    sees the reduced sizes.
    """
    if getattr(config.option, "benchmark_min_rounds", None) == 5:
        config.option.benchmark_min_rounds = 2
    if getattr(config.option, "benchmark_max_time", None) == "1.0":
        config.option.benchmark_max_time = "0.5"
    if config.getoption("--bench-quick"):
        # WORKLOAD_SIZE stays put: the <5% disabled-overhead guard in
        # test_obs_overhead.py is a best-of-N timing comparison whose
        # noise floor scales inversely with the workload length.
        global DATASET_SIZE, KNN_DATASET_SIZE, REAL_SLICE
        DATASET_SIZE //= 4
        KNN_DATASET_SIZE //= 4
        REAL_SLICE //= 4


# Benchmark-suite scale knobs (kept small so the suite runs in minutes).
WORKLOAD_SIZE = 400
DATASET_SIZE = 800
KNN_DATASET_SIZE = 600
KNN_QUERIES = 2
REAL_SLICE = 1500

DOMINANCE_CRITERIA = ("hyperbola", "minmax", "mbr", "gp", "trigonometric")
KNN_CRITERIA = ("hyperbola", "minmax", "mbr", "gp")


def dominance_workload(dataset: Dataset, seed: int = 0) -> DominanceWorkload:
    return DominanceWorkload.from_dataset(dataset, size=WORKLOAD_SIZE, seed=seed)


# Shared dataset cache: a headless fig sweep asks for the same handful
# of configurations dozens of times; building each once keeps the suite
# I/O- and RNG-bound work constant regardless of how many benchmarks run.
_DATASET_CACHE: dict = {}


def make_synthetic(
    n: "int | None" = None,
    d: int = 6,
    mu: float = 10.0,
    **kwargs,
) -> Dataset:
    # Defaults resolve at call time so --bench-quick (applied in
    # pytest_configure, after this module is imported) takes effect.
    if n is None:
        n = DATASET_SIZE
    key = ("synthetic", n, d, mu, tuple(sorted(kwargs.items())))
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = synthetic_dataset(n, d, mu=mu, seed=0, **kwargs)
    return _DATASET_CACHE[key]


def make_real(name: str, mu: float = 10.0) -> Dataset:
    # relative_radii rescales mu to each dataset's coordinate spread so
    # one sweep is meaningful on [0,1] features and 100s-range counts alike.
    key = ("real", name, mu, REAL_SLICE)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = real_dataset(
            name, mu=mu, relative_radii=True, size=REAL_SLICE
        )
    return _DATASET_CACHE[key]


def bench_criterion_workload(benchmark, criterion_name, workload):
    """Benchmark one criterion over a whole workload; attach quality."""
    criterion = get_criterion(criterion_name)
    triples = list(workload.triples())

    def run() -> int:
        positives = 0
        for sa, sb, sq in triples:
            positives += criterion.dominates(sa, sb, sq)
        return positives

    benchmark(run)
    predicted = batch_evaluate(criterion_name, *workload.arrays())
    truth = batch_evaluate("hyperbola", *workload.arrays())
    from repro.experiments.metrics import binary_metrics

    scores = binary_metrics(predicted, truth)
    benchmark.extra_info["precision_pct"] = round(scores.precision, 2)
    benchmark.extra_info["recall_pct"] = round(scores.recall, 2)
    benchmark.extra_info["workload"] = len(workload)


@pytest.fixture(scope="session")
def default_synthetic() -> Dataset:
    """The Table-2 default configuration, at benchmark scale."""
    return make_synthetic()


# ----------------------------------------------------------------------
# kNN benchmarking helpers (Figures 13-16)
# ----------------------------------------------------------------------

_KNN_WORLD_CACHE: dict = {}


def knn_world(n: "int | None" = None, d: int = 6, mu: float = 10.0):
    """(tree, reference index, query spheres) for one configuration.

    Cached per configuration: eight (strategy x criterion) benchmarks
    share each dataset/tree, as in the paper's harness.
    """
    from repro.data.workload import knn_queries
    from repro.index.linear import LinearIndex
    from repro.index.sstree import SSTree

    if n is None:
        n = KNN_DATASET_SIZE
    key = (n, d, mu)
    if key not in _KNN_WORLD_CACHE:
        dataset = make_synthetic(n=n, d=d, mu=mu)
        tree = SSTree.bulk_load(dataset.items())
        flat = LinearIndex(dataset.items())
        queries = knn_queries(dataset, count=KNN_QUERIES, seed=1)
        _KNN_WORLD_CACHE[key] = (tree, flat, queries)
    return _KNN_WORLD_CACHE[key]


def bench_knn(benchmark, *, strategy, criterion, k, n=None, d=6, mu=10.0):
    """Benchmark one (strategy, criterion) kNN combination; attach quality."""
    from repro.queries.knn import knn_query, knn_reference

    tree, flat, queries = knn_world(n=n, d=d, mu=mu)

    def run():
        return [
            knn_query(tree, query, k, criterion=criterion, strategy=strategy)
            for query in queries
        ]

    results = benchmark(run)
    precision_sum = coverage_sum = 0.0
    for query, result in zip(queries, results):
        truth = knn_reference(flat, query, k).key_set()
        returned = result.key_set()
        hits = len(returned & truth)
        precision_sum += 100.0 * hits / len(returned) if returned else 100.0
        coverage_sum += 100.0 * hits / len(truth) if truth else 100.0
    benchmark.extra_info["algorithm"] = f"{strategy.upper()}({criterion})"
    benchmark.extra_info["precision_pct"] = round(precision_sum / len(queries), 2)
    benchmark.extra_info["coverage_pct"] = round(coverage_sum / len(queries), 2)
    benchmark.extra_info["queries"] = len(queries)
    if criterion == "hyperbola":
        assert precision_sum == pytest.approx(100.0 * len(queries))
