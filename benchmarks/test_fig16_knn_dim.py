"""Figure 16: effect of the dimensionality d on kNN queries (synthetic).

Expected shape: query time grows with d (distance computations and the
index's pruning power both degrade); precision not strongly affected.
"""

from __future__ import annotations

import pytest

from conftest import KNN_CRITERIA, bench_knn

DIMENSIONS = (2, 4, 6, 8, 10)


@pytest.mark.parametrize("d", DIMENSIONS)
@pytest.mark.parametrize("strategy", ("hs", "df"))
@pytest.mark.parametrize("criterion", KNN_CRITERIA)
def test_knn_dimensionality_sweep(benchmark, d, strategy, criterion):
    benchmark.extra_info["d"] = d
    bench_knn(benchmark, strategy=strategy, criterion=criterion, k=10, d=d)
