"""Unbudgeted-execution overhead guard for the kNN traversal.

The resilience layer threads a ``budget`` through the kNN traversals
(:func:`repro.queries.knn._best_first` and friends) and guards every
charge with a single ``budget is not None`` check, plus one contextvar
read per query in :func:`~repro.queries.knn.knn_query`.  With no budget
active that must cost within 5% of a replica traversal with the budget
plumbing deleted.

The replica below re-states the ``_best_first`` body minus the budget
checks, sharing every other helper (``_BestKnownList``, the safe
distance bounds), so the two loops differ *only* by the
``if budget is not None`` guards — the same discipline as the
instrumentation guard in ``test_obs_overhead.py``.

Interleaved best-of-N timing keeps the comparison robust against CPU
frequency drift: each round times both variants back to back and only
the fastest round of each survives.
"""

from __future__ import annotations

import heapq
import itertools
import time

from conftest import make_synthetic

from repro import obs
from repro.data.workload import knn_queries
from repro.index.sstree import SSTree
from repro.queries import knn as knn_mod
from repro.queries.knn import KNNResult, _BestKnownList, _safe_node_min_dist
from repro.queries.validation import validate_k, validate_query
from repro.resilience.budget import current as current_budget

ROUNDS = 20
MAX_OVERHEAD_RATIO = 1.05
K = 10


def _best_first_unbudgeted(root, query, best, result) -> None:
    """``knn._best_first`` with the budget guards deleted."""
    counter = itertools.count()
    heap = [(_safe_node_min_dist(root, query, result), next(counter), root)]
    while heap:
        lower_bound, _, node = heapq.heappop(heap)
        if lower_bound > best.distk:
            break
        result.nodes_visited += 1
        if node.is_leaf:
            for key, sphere in node.entries:
                result.entries_considered += 1
                best.offer(key, sphere)
        else:
            for child in node.children:
                gap = _safe_node_min_dist(child, query, result)
                if gap <= best.distk:
                    heapq.heappush(heap, (gap, next(counter), child))


def _baseline_query(tree, query, k, criterion) -> KNNResult:
    """``knn_query`` restated without the budget plumbing.

    Validation stays (it runs once per query in both variants); what is
    deleted is the contextvar read and the per-charge guards.
    """
    validate_k(k, len(tree))
    validate_query(query, tree.dimension)
    best = _BestKnownList(k, query, criterion)
    result = KNNResult(keys=[], spheres=[], distk=float("inf"))
    _best_first_unbudgeted(tree.root, query, best, result)
    result.keys, result.spheres, result.distk = best.finalize()
    result.dominance_checks = best.dominance_checks
    result.pruned_case3 = best.pruned_case3
    knn_mod._record_traversal(tree, result)
    return result


def _run_instrumented(tree, queries, criterion) -> float:
    started = time.perf_counter()
    for query in queries:
        knn_mod.knn_query(tree, query, K, criterion=criterion)
    return time.perf_counter() - started


def _run_baseline(tree, queries, criterion) -> float:
    started = time.perf_counter()
    for query in queries:
        _baseline_query(tree, query, K, criterion)
    return time.perf_counter() - started


def test_unbudgeted_knn_overhead_under_five_percent():
    assert current_budget() is None  # the guard under test must idle

    from repro.core.base import get_criterion

    dataset = make_synthetic(n=1200, d=4, mu=0.2)
    tree = SSTree.bulk_load(dataset.items())
    queries = list(knn_queries(dataset, count=30, seed=2))
    criterion = get_criterion("hyperbola")

    # Same answers, or the comparison is meaningless.
    for query in queries[:10]:
        assert knn_mod.knn_query(
            tree, query, K, criterion=criterion
        ).key_set() == _baseline_query(tree, query, K, criterion).key_set()

    obs.disable()
    assert not obs.ENABLED
    # Warm-up (bytecode caches, branch predictors) before measuring.
    _run_instrumented(tree, queries, criterion)
    _run_baseline(tree, queries, criterion)

    best_instrumented = best_baseline = float("inf")
    for _ in range(ROUNDS):
        best_instrumented = min(
            best_instrumented, _run_instrumented(tree, queries, criterion)
        )
        best_baseline = min(
            best_baseline, _run_baseline(tree, queries, criterion)
        )

    ratio = best_instrumented / best_baseline
    assert ratio < MAX_OVERHEAD_RATIO, (
        f"idle budget plumbing costs {100.0 * (ratio - 1.0):.1f}% "
        f"(budget-aware {best_instrumented:.4f}s vs baseline "
        f"{best_baseline:.4f}s over {len(queries)} queries)"
    )
