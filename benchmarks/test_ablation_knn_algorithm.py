"""Ablation: the paper's single-pass kNN list maintenance vs two-phase.

The incremental algorithm (Section 6) prunes against intermediate
anchors — cheaper lists but possible coverage loss; the two-phase
variant is Definition-2 exact.  This ablation measures the price of
exactness.
"""

from __future__ import annotations

import pytest

from repro.queries.knn import knn_query, knn_reference

from conftest import bench_knn, knn_world


@pytest.mark.parametrize("algorithm", ("incremental", "two-phase"))
@pytest.mark.parametrize("strategy", ("hs", "df"))
def test_knn_algorithm_variants(benchmark, algorithm, strategy):
    tree, flat, queries = knn_world()

    def run():
        return [
            knn_query(tree, q, 10, strategy=strategy, algorithm=algorithm)
            for q in queries
        ]

    results = benchmark(run)
    coverage_sum = 0.0
    for query, result in zip(queries, results):
        truth = knn_reference(flat, query, 10).key_set()
        coverage_sum += 100.0 * len(result.key_set() & truth) / len(truth)
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["coverage_pct"] = round(coverage_sum / len(queries), 2)
    if algorithm == "two-phase":
        assert coverage_sum == pytest.approx(100.0 * len(queries))
