"""Disabled-instrumentation overhead guard for the hot dominance path.

The ``repro.obs`` call sites in :meth:`HyperbolaCriterion.dominates`
are guarded by a single module-attribute check, so with instrumentation
off the instrumented code must run within 5% of an uninstrumented
replica.  The replica below re-states the ``dominates`` body with the
guards deleted, using the same module helpers, so the two loops differ
*only* by the ``if obs.ENABLED`` checks.

Interleaved best-of-N timing keeps the comparison robust against CPU
frequency drift: each round times both variants back to back and only
the fastest round of each survives.

This file is intentionally a plain pytest test (no ``benchmark``
fixture) so ``pytest benchmarks/test_obs_overhead.py`` asserts the
bound directly.
"""

from __future__ import annotations

import time

from conftest import dominance_workload, make_synthetic

from repro import obs
from repro.core import hyperbola
from repro.core.hyperbola import HyperbolaCriterion, boundary_margin
from repro.geometry.transform import FocalFrame

ROUNDS = 20
MAX_OVERHEAD_RATIO = 1.05


class _BaselineHyperbola(HyperbolaCriterion):
    """The ``_decide`` body with every ``if obs.ENABLED`` deleted.

    The template ``dominates`` (dimension validation) is inherited
    unchanged, so the two variants still differ only by the guards.
    """

    def _decide(self, sa, sb, sq) -> bool:
        if sa.overlaps(sb):
            return False
        if boundary_margin(sa, sb, sq.center) <= 0.0:
            return False
        if sq.radius == 0.0:
            return True
        frame = FocalFrame(sa.center, sb.center)
        t, rho = frame.reduce(sq.center)
        rab = sa.radius + sb.radius
        if sa.dimension == 1:
            dmin = abs(t + rab / 2.0)
        elif rab <= hyperbola._BISECTOR_THRESHOLD * frame.alpha:
            dmin = abs(t)
        else:
            dmin = hyperbola._distance_to_hyperbola_2d(t, rho, frame.alpha, rab)
        return dmin > sq.radius


def _run_workload_seconds(criterion, triples) -> float:
    dominates = criterion.dominates
    started = time.perf_counter()
    for sa, sb, sq in triples:
        dominates(sa, sb, sq)
    return time.perf_counter() - started


def test_disabled_instrumentation_overhead_under_five_percent():
    triples = list(dominance_workload(make_synthetic()).triples())
    instrumented = HyperbolaCriterion()
    baseline = _BaselineHyperbola()

    # Same answers, or the comparison is meaningless.
    assert all(
        instrumented.dominates(sa, sb, sq) == baseline.dominates(sa, sb, sq)
        for sa, sb, sq in triples[:50]
    )

    obs.disable()
    assert not obs.ENABLED
    # Warm-up (bytecode caches, branch predictors) before measuring.
    _run_workload_seconds(instrumented, triples)
    _run_workload_seconds(baseline, triples)

    best_instrumented = best_baseline = float("inf")
    for _ in range(ROUNDS):
        best_instrumented = min(
            best_instrumented, _run_workload_seconds(instrumented, triples)
        )
        best_baseline = min(
            best_baseline, _run_workload_seconds(baseline, triples)
        )

    ratio = best_instrumented / best_baseline
    assert ratio < MAX_OVERHEAD_RATIO, (
        f"disabled instrumentation costs {100.0 * (ratio - 1.0):.1f}% "
        f"(instrumented {best_instrumented:.4f}s vs baseline "
        f"{best_baseline:.4f}s over {len(triples)} triples)"
    )


def test_non_strict_verified_overhead_under_five_percent():
    """``VerifiedHyperbola(strict=False)`` must not tax the fast path.

    With certification off the verified criterion delegates straight to
    the plain Hyperbola ``_decide``; the only admissible extra cost is
    one attribute check per call.
    """
    from repro.robust import VerifiedHyperbola

    triples = list(dominance_workload(make_synthetic()).triples())
    plain = HyperbolaCriterion()
    relaxed = VerifiedHyperbola(strict=False)

    assert all(
        relaxed.dominates(sa, sb, sq) == plain.dominates(sa, sb, sq)
        for sa, sb, sq in triples[:50]
    )

    obs.disable()
    _run_workload_seconds(relaxed, triples)
    _run_workload_seconds(plain, triples)

    best_relaxed = best_plain = float("inf")
    for _ in range(ROUNDS):
        best_relaxed = min(best_relaxed, _run_workload_seconds(relaxed, triples))
        best_plain = min(best_plain, _run_workload_seconds(plain, triples))

    ratio = best_relaxed / best_plain
    assert ratio < MAX_OVERHEAD_RATIO, (
        f"non-strict verified criterion costs {100.0 * (ratio - 1.0):.1f}% "
        f"(verified {best_relaxed:.4f}s vs hyperbola {best_plain:.4f}s "
        f"over {len(triples)} triples)"
    )
