"""Figure 11: dominance execution time in high-dimensional space.

Only the runtime panel exists in the paper; d sweeps {25, 50, 75, 100}.
Expected shape: every criterion remains near-linear in d (no blow-up),
preserving the relative ordering from Figure 9.
"""

from __future__ import annotations

import pytest

from conftest import (
    DOMINANCE_CRITERIA,
    bench_criterion_workload,
    dominance_workload,
    make_synthetic,
)

HIGH_DIMENSIONS = (25, 50, 75, 100)


@pytest.mark.parametrize("d", HIGH_DIMENSIONS)
@pytest.mark.parametrize("name", DOMINANCE_CRITERIA)
def test_dominance_high_dimensional(benchmark, name, d):
    workload = dominance_workload(make_synthetic(n=400, d=d))
    benchmark.extra_info["d"] = d
    bench_criterion_workload(benchmark, name, workload)
