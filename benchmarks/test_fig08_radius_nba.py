"""Figure 8: effect of the average radius mu on the dominance problem (NBA).

Regenerates all three panels — execution time (the benchmarked
quantity), precision and recall (``extra_info``) — for every criterion
at each mu in {5, 10, 50, 100}, on the NBA surrogate dataset.

Expected shape (the paper's): MinMax cheapest; Hyperbola at 100/100;
MinMax/MBR/GP precision 100 with recall degrading as mu grows;
Trigonometric recall 100 with precision degrading as mu grows.
"""

from __future__ import annotations

import pytest

from conftest import (
    DOMINANCE_CRITERIA,
    bench_criterion_workload,
    dominance_workload,
    make_real,
)

MU_VALUES = (5.0, 10.0, 50.0, 100.0)


@pytest.mark.parametrize("mu", MU_VALUES)
@pytest.mark.parametrize("name", DOMINANCE_CRITERIA)
def test_dominance_radius_sweep_nba(benchmark, name, mu):
    workload = dominance_workload(make_real("nba", mu=mu))
    benchmark.extra_info["mu"] = mu
    benchmark.extra_info["dataset"] = "nba"
    bench_criterion_workload(benchmark, name, workload)
