"""Figure 10: the dominance problem on the four real datasets.

Time/precision/recall for every criterion on NBA, Forest, Color and
Texture (surrogates; see DESIGN.md Section 3).  Expected shape: the
same criterion ordering as on synthetic data — the paper's point is
that the dominance results carry over to real data distributions.
"""

from __future__ import annotations

import pytest

from conftest import (
    DOMINANCE_CRITERIA,
    bench_criterion_workload,
    dominance_workload,
    make_real,
)

REAL_DATASETS = ("nba", "forest", "color", "texture")


@pytest.mark.parametrize("dataset_name", REAL_DATASETS)
@pytest.mark.parametrize("name", DOMINANCE_CRITERIA)
def test_dominance_real_datasets(benchmark, name, dataset_name):
    workload = dominance_workload(make_real(dataset_name, mu=10.0))
    benchmark.extra_info["dataset"] = dataset_name
    bench_criterion_workload(benchmark, name, workload)
