"""Ablation: quartic solver — closed-form Ferrari vs companion matrix.

The paper's O(d) bound hinges on the quartic being solvable in O(1);
this ablation quantifies the constant factor of the two interchangeable
solvers (plus the batched companion solver per root set).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.quartic import (
    solve_quartic_real,
    solve_quartic_real_batch,
    solve_quartic_real_closed,
)

RNG = np.random.default_rng(0)
COEFFS = RNG.normal(0.0, 10.0, (256, 5))


@pytest.mark.parametrize(
    ("label", "solver"),
    (
        ("companion", solve_quartic_real),
        ("ferrari", solve_quartic_real_closed),
    ),
)
def test_scalar_solver(benchmark, label, solver):
    def run():
        total = 0
        for row in COEFFS:
            total += solver(row).size
        return total

    roots_found = benchmark(run)
    benchmark.extra_info["solver"] = label
    benchmark.extra_info["roots_found"] = roots_found


def test_batched_solver(benchmark):
    out = benchmark(solve_quartic_real_batch, COEFFS)
    benchmark.extra_info["solver"] = "companion-batched"
    benchmark.extra_info["roots_found"] = int(np.count_nonzero(~np.isnan(out)))
