"""Figure 9: effect of dimensionality d on the dominance problem (synthetic).

Time/precision/recall for every criterion at d in {2, 4, 6, 8, 10}.
Expected shape: every criterion's per-decision cost grows mildly
(linearly) with d — the O(d) efficiency claim — while the quality flags
stay as in Table 1.
"""

from __future__ import annotations

import pytest

from conftest import (
    DOMINANCE_CRITERIA,
    bench_criterion_workload,
    dominance_workload,
    make_synthetic,
)

DIMENSIONS = (2, 4, 6, 8, 10)


@pytest.mark.parametrize("d", DIMENSIONS)
@pytest.mark.parametrize("name", DOMINANCE_CRITERIA)
def test_dominance_dimensionality_sweep(benchmark, name, d):
    workload = dominance_workload(make_synthetic(d=d))
    benchmark.extra_info["d"] = d
    bench_criterion_workload(benchmark, name, workload)
