"""Figure 15: effect of the data size N on kNN queries (synthetic).

Expected shape: query time grows with N for every combination;
precision is not strongly affected by N.

(The paper sweeps 20k-180k; the benchmark suite scales the axis down by
100x — run ``python -m repro fig15 --scale 1.0`` for paper sizes.)
"""

from __future__ import annotations

import pytest

from conftest import KNN_CRITERIA, bench_knn

N_VALUES = (200, 600, 1000, 1400, 1800)


@pytest.mark.parametrize("n", N_VALUES)
@pytest.mark.parametrize("strategy", ("hs", "df"))
@pytest.mark.parametrize("criterion", KNN_CRITERIA)
def test_knn_datasize_sweep(benchmark, n, strategy, criterion):
    benchmark.extra_info["n"] = n
    bench_knn(benchmark, strategy=strategy, criterion=criterion, k=10, n=n)
