"""Table 1: per-criterion cost of a single dominance decision.

Benchmarks one representative decision per criterion (the efficiency
column of Table 1) and re-verifies the correct/sound flags on a
workload, attaching the observed counts to ``extra_info``.
"""

from __future__ import annotations

import pytest

from repro.core.base import get_criterion
from repro.core.batch import batch_evaluate
from repro.experiments.metrics import binary_metrics
from repro.geometry.hypersphere import Hypersphere

from conftest import DOMINANCE_CRITERIA, dominance_workload, make_synthetic

SA = Hypersphere([0.0] * 6, 1.0)
SB = Hypersphere([30.0] + [0.0] * 5, 1.0)
SQ = Hypersphere([-3.0] + [0.5] * 5, 1.0)


@pytest.mark.parametrize("name", DOMINANCE_CRITERIA)
def test_single_decision_cost(benchmark, name):
    criterion = get_criterion(name)
    result = benchmark(criterion.dominates, SA, SB, SQ)
    benchmark.extra_info["criterion"] = name
    benchmark.extra_info["verdict"] = bool(result)


@pytest.mark.parametrize("name", DOMINANCE_CRITERIA)
def test_property_flags(benchmark, name):
    """Empirical Table-1 flags on a workload (timing the batch kernel)."""
    workload = dominance_workload(make_synthetic())
    arrays = workload.arrays()
    predicted = benchmark(batch_evaluate, name, *arrays)
    truth = batch_evaluate("hyperbola", *arrays)
    scores = binary_metrics(predicted, truth)
    criterion = get_criterion(name)
    benchmark.extra_info["false_positives"] = scores.false_positives
    benchmark.extra_info["false_negatives"] = scores.false_negatives
    if criterion.is_correct:
        assert scores.false_positives == 0
    if criterion.is_sound:
        assert scores.false_negatives == 0
