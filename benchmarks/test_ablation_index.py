"""Ablation: SS-tree vs VP-tree vs M-tree vs linear scan for kNN.

The paper uses an SS-tree; the VP-tree and M-tree (related work)
expose the same node interface here, so the identical query algorithm
runs on all three.  The linear scan bounds what indexing buys at this
scale.
"""

from __future__ import annotations

import pytest

from repro.data.workload import knn_queries
from repro.index.linear import LinearIndex
from repro.index.mtree import MTree
from repro.index.sstree import SSTree
from repro.index.vptree import VPTree
from repro.queries.knn import knn_query

from conftest import KNN_QUERIES, make_synthetic

DATASET = make_synthetic(n=800, d=6)
INDEXES = {
    "sstree": SSTree.bulk_load(DATASET.items()),
    "vptree": VPTree.build(DATASET.items()),
    "mtree": MTree.build(DATASET.items()),
    "linear": LinearIndex(DATASET.items()),
}
QUERIES = knn_queries(DATASET, count=KNN_QUERIES, seed=1)


@pytest.mark.parametrize("index_name", sorted(INDEXES))
def test_index_substrate(benchmark, index_name):
    index = INDEXES[index_name]

    def run():
        return [
            knn_query(index, q, 10, algorithm="two-phase") for q in QUERIES
        ]

    results = benchmark(run)
    benchmark.extra_info["index"] = index_name
    benchmark.extra_info["mean_answer"] = round(
        sum(len(r) for r in results) / len(results), 1
    )
    # All three substrates answer identically (two-phase is exact).
    reference = [
        knn_query(INDEXES["linear"], q, 10, algorithm="two-phase").key_set()
        for q in QUERIES
    ]
    for got, expected in zip(results, reference):
        assert got.key_set() == expected


@pytest.mark.parametrize("index_name", ("sstree", "vptree", "mtree"))
def test_index_build_cost(benchmark, index_name):
    items = list(DATASET.items())
    builders = {
        "sstree": SSTree.bulk_load,
        "vptree": VPTree.build,
        "mtree": MTree.build,
    }
    tree = benchmark(builders[index_name], items)
    benchmark.extra_info["nodes"] = tree.node_count()
    benchmark.extra_info["height"] = tree.height
